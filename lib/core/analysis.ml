open X86

type func = {
  fn_addr : int;
  fn_name : string;
  fn_end : int;
  fn_slice : (int * int) option;
}

type direct_call = {
  dc_index : int;
  dc_addr : int;
  dc_target : int;
  dc_name : string option;
}

type indirect_call = {
  ic_index : int;
  ic_addr : int;
  ic_reg : X86.Reg.t;
  ic_window : int array;
}

type t = {
  buffer : Disasm.buffer;
  symbols : Symhash.t;
  functions : func array;
  direct_calls : direct_call array;
  indirect_calls : indirect_call array;
  indirect_jumps : (int * int) array;
  tables : (int * int) array;
  branch_targets : int array;
  hashes : (int, string) Hashtbl.t;
  precomputed : (int, string * int) Hashtbl.t;
  mutable build_cycles : int;
}

type hash_task = unit -> (int * (string * int)) list
type hash_runner = hash_task list -> (int * (string * int)) list list

(* The one padding predicate shared by the indirect-call window scan,
   the CFG leader scan, and the lint policy. Covers every NOP encoding
   the toolchain emits as bundle padding: the one-byte [0x90], the
   operand-size-prefixed form, and the multi-byte [nopl (%rax)] used
   inside jump tables — all of which decode to mnemonic [NOP]. *)
let is_padding (i : Insn.t) = match i.Insn.mnem with Insn.NOP -> true | _ -> false

let is_table_jmp (i : Insn.t) =
  match (i.Insn.mnem, i.Insn.ops) with Insn.JMP, [ Insn.Rel _ ] -> true | _ -> false

let is_table_nop (i : Insn.t) =
  match (i.Insn.mnem, i.Insn.ops) with Insn.NOP, [ Insn.Mem _ ] -> true | _ -> false

(* Smallest entry index whose address is >= [addr] (= n when past the
   end); entries are sorted and contiguous. *)
let lower_bound (entries : Disasm.entry array) addr =
  let n = Array.length entries in
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if entries.(mid).Disasm.addr < addr then go (mid + 1) hi else go lo mid
    end
  in
  go 0 n

let build perf (b : Disasm.buffer) symbols =
  let before = Sgx.Perf.total_cycles perf in
  let entries = b.Disasm.entries in
  let n = Array.length entries in
  let code_end = b.Disasm.base + Disasm.code_length b.Disasm.code in
  (* A (jmpq rel; nopl) pair whose jmp resolves to a known function
     start is one IFCC jump-table entry; maximal runs form tables. *)
  let entry_pair_at i =
    i + 1 < n
    && is_table_jmp entries.(i).Disasm.insn
    && is_table_nop entries.(i + 1).Disasm.insn
    &&
    match entries.(i).Disasm.insn.Insn.ops with
    | [ Insn.Rel rel ] ->
        let e = entries.(i) in
        Symhash.is_function_start symbols (e.Disasm.addr + e.Disasm.len + rel)
    | _ -> false
  in
  let direct_calls = ref [] in
  let indirect_calls = ref [] in
  let indirect_jumps = ref [] in
  let tables = ref [] in
  let branch_targets = ref [] in
  let window_of i =
    let rec go j acc k =
      if k = 5 || j < 0 then Array.of_list (List.rev acc)
      else if is_padding entries.(j).Disasm.insn then go (j - 1) acc k
      else go (j - 1) (j :: acc) (k + 1)
    in
    (* Nearest first: element 0 is the closest non-nop instruction
       before the call. *)
    go (i - 1) [] 0
  in
  let i = ref 0 in
  while !i < n do
    let e = entries.(!i) in
    if entry_pair_at !i then begin
      (* One table run: every entry in it is still charged, but the
         classification decision is made once for the whole run. *)
      let lo = e.Disasm.addr in
      let j = ref !i in
      while entry_pair_at !j do j := !j + 2 done;
      Sgx.Perf.count_cycles perf ((!j - !i) * Costmodel.index_step);
      let hi = if !j < n then entries.(!j).Disasm.addr else code_end in
      tables := (lo, hi) :: !tables;
      i := !j
    end
    else begin
      Sgx.Perf.count_cycles perf Costmodel.index_step;
      (match (e.Disasm.insn.Insn.mnem, e.Disasm.insn.Insn.ops) with
      | Insn.CALL, [ Insn.Rel rel ] ->
          Sgx.Perf.count_cycles perf Costmodel.call_target_compute;
          let target = e.Disasm.addr + e.Disasm.len + rel in
          direct_calls :=
            {
              dc_index = !i;
              dc_addr = e.Disasm.addr;
              dc_target = target;
              dc_name = Symhash.name_of_addr symbols target;
            }
            :: !direct_calls
      | Insn.CALL_IND, [ Insn.Reg (Insn.W64, r) ] ->
          Sgx.Perf.count_cycles perf (5 * Costmodel.pattern_probe);
          indirect_calls :=
            { ic_index = !i; ic_addr = e.Disasm.addr; ic_reg = r; ic_window = window_of !i }
            :: !indirect_calls
      | Insn.JMP_IND, [ Insn.Reg _ ] ->
          indirect_jumps := (!i, e.Disasm.addr) :: !indirect_jumps
      | (Insn.JMP | Insn.JCC _), [ Insn.Rel rel ] ->
          branch_targets := (e.Disasm.addr + e.Disasm.len + rel) :: !branch_targets
      | _ -> ());
      incr i
    end
  done;
  let functions =
    Symhash.functions symbols
    |> List.map (fun (addr, name) ->
           Sgx.Perf.count_cycles perf Costmodel.index_step;
           let fn_end =
             match Symhash.function_end symbols addr with
             | Some e -> e
             | None -> code_end
           in
           let fn_slice =
             match Disasm.index_of_addr b addr with
             | None -> None
             | Some lo -> Some (lo, lower_bound entries fn_end)
           in
           { fn_addr = addr; fn_name = name; fn_end; fn_slice })
    |> Array.of_list
  in
  let t =
    {
      buffer = b;
      symbols;
      functions;
      direct_calls = Array.of_list (List.rev !direct_calls);
      indirect_calls = Array.of_list (List.rev !indirect_calls);
      indirect_jumps = Array.of_list (List.rev !indirect_jumps);
      tables = Array.of_list (List.rev !tables);
      branch_targets = Array.of_list (List.sort_uniq compare !branch_targets);
      hashes = Hashtbl.create 64;
      precomputed = Hashtbl.create 64;
      build_cycles = 0;
    }
  in
  t.build_cycles <- Sgx.Perf.total_cycles perf - before;
  t

let function_of_addr t addr =
  let fns = t.functions in
  let rec go lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let f = fns.(mid) in
      if f.fn_addr = addr then Some f
      else if f.fn_addr < addr then go (mid + 1) hi
      else go lo mid
    end
  in
  go 0 (Array.length fns)

(* Greatest table whose lo <= addr, then a bounds check: the ranges are
   sorted and non-overlapping, so one binary search decides. *)
let in_table t addr =
  let ts = t.tables in
  let n = Array.length ts in
  let rec go lo hi =
    (* Invariant: candidates with t_lo <= addr live in [0, hi); [lo-1]
       is the best found so far. *)
    if lo >= hi then
      lo > 0
      &&
      let tlo, thi = ts.(lo - 1) in
      addr >= tlo && addr < thi
    else begin
      let mid = (lo + hi) / 2 in
      if fst ts.(mid) <= addr then go (mid + 1) hi else go lo mid
    end
  in
  go 0 n

(* Greatest function whose start is <= addr, then a bounds check
   against its exclusive end. *)
let function_containing t addr =
  let fns = t.functions in
  let n = Array.length fns in
  let rec go lo hi =
    if lo >= hi then
      if lo > 0 then begin
        let f = fns.(lo - 1) in
        if addr >= f.fn_addr && addr < f.fn_end then Some f else None
      end
      else None
    else begin
      let mid = (lo + hi) / 2 in
      if fns.(mid).fn_addr <= addr then go (mid + 1) hi else go lo mid
    end
  in
  go 0 n

(* Smallest branch target >= lo, then one compare against hi. *)
let branch_target_within t ~lo ~hi =
  let ts = t.branch_targets in
  let n = Array.length ts in
  let rec go l h =
    if l >= h then l
    else begin
      let mid = (l + h) / 2 in
      if ts.(mid) < lo then go (mid + 1) h else go l mid
    end
  in
  let i = go 0 n in
  i < n && ts.(i) < hi

(* Absorb code bytes into a hash, reading strings and off-heap buffers
   alike in place. *)
let absorb h (code : Decoder.src) ~pos ~len =
  match code with
  | Decoder.Str s -> Crypto.Sha256.update_sub h s ~pos ~len
  | Decoder.Big b -> Crypto.Sha256.update_big_sub h b ~pos ~len

(* Digest plus the modelled cycles the sequential policy would charge
   for computing it — the cost is carried alongside so a digest computed
   off-thread (prehash) can be charged identically, later, on the
   inspecting thread. Pure w.r.t. [t]: only reads the buffer/symbols. *)
let hash_and_cost t ~addr =
  let b = t.buffer in
  let stop =
    match Symhash.function_end t.symbols addr with
    | Some e -> e
    | None -> b.Disasm.base + Disasm.code_length b.Disasm.code
  in
  match Disasm.index_of_addr b addr with
  | None -> None
  | Some i0 ->
      let h = Crypto.Sha256.init () in
      let n = Array.length b.Disasm.entries in
      let cost = ref Costmodel.hash_finalize in
      let rec go i =
        if i >= n then ()
        else begin
          let e = b.Disasm.entries.(i) in
          if e.Disasm.addr >= stop then ()
          else begin
            cost := !cost + Costmodel.hash_per_insn + (Costmodel.hash_per_byte * e.Disasm.len);
            absorb h b.Disasm.code
              ~pos:(e.Disasm.addr - b.Disasm.base) ~len:e.Disasm.len;
            go (i + 1)
          end
        end
      in
      go i0;
      Some (Crypto.Sha256.hex (Crypto.Sha256.finalize h), !cost)

let function_hash_unmemoized t ~perf ~addr =
  match hash_and_cost t ~addr with
  | None -> None
  | Some (hex, cost) ->
      Sgx.Perf.count_cycles perf cost;
      Some hex

let function_hash t ~perf ~addr =
  match Hashtbl.find_opt t.hashes addr with
  | Some hex ->
      Sgx.Perf.count_cycles perf Costmodel.hash_memo_lookup;
      Some hex
  | None -> (
      (* A prehashed digest is charged exactly what computing it now
         would cost: prehash is a wall-clock optimization and must be
         invisible to the modelled-cycle accounting. *)
      match Hashtbl.find_opt t.precomputed addr with
      | Some (hex, cost) ->
          Sgx.Perf.count_cycles perf cost;
          Hashtbl.replace t.hashes addr hex;
          Some hex
      | None -> (
          match function_hash_unmemoized t ~perf ~addr with
          | Some hex ->
              Hashtbl.replace t.hashes addr hex;
              Some hex
          | None -> None))

(* --- parallel prehash --------------------------------------------- *)

(* The functions whose digests an inspection can ask for: targets of
   direct calls that resolve to a known function start (exactly the
   candidates the library-linking policy hashes, before its db
   filter). *)
let hash_candidates t =
  let addrs = Hashtbl.create 64 in
  Array.iter
    (fun (dc : direct_call) ->
      if dc.dc_name <> None && not (Hashtbl.mem addrs dc.dc_target) then
        Hashtbl.replace addrs dc.dc_target ())
    t.direct_calls;
  Hashtbl.fold (fun addr () acc -> addr :: acc) addrs []
  |> List.sort compare

let chunk n xs =
  let rec go i cur acc = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if i = n then go 1 [ x ] (List.rev cur :: acc) rest
        else go (i + 1) (x :: cur) acc rest
  in
  go 0 [] [] xs

(* When a function's decoded entries tile [addr, fn_end) back-to-back,
   the entry-wise streamed SHA-256 equals the SHA-256 of the raw byte
   slice, so the digest may be computed from the contiguous slice (and
   batched). Returns the slice as a buffer offset/length plus the
   carried cost from the same entry walk [hash_and_cost] performs, so
   charging stays bit-identical to the one-shot path. *)
let tiled_slice t ~addr =
  let b = t.buffer in
  let stop =
    match Symhash.function_end t.symbols addr with
    | Some e -> e
    | None -> b.Disasm.base + Disasm.code_length b.Disasm.code
  in
  match Disasm.index_of_addr b addr with
  | None -> None
  | Some i0 ->
      let n = Array.length b.Disasm.entries in
      let rec go i next cost =
        if i >= n then Some (next, cost)
        else begin
          let e = b.Disasm.entries.(i) in
          if e.Disasm.addr >= stop then Some (next, cost)
          else if e.Disasm.addr <> next then None
          else
            go (i + 1)
              (e.Disasm.addr + e.Disasm.len)
              (cost + Costmodel.hash_per_insn + (Costmodel.hash_per_byte * e.Disasm.len))
        end
      in
      (match go i0 addr Costmodel.hash_finalize with
      | Some (next, cost) when next = stop ->
          Some (addr - b.Disasm.base, stop - addr, cost)
      | Some _ | None -> None)

(* Adopt digests the streaming pipeline computed from raw staged bytes
   while later pages were still in flight. A digest for [lo, hi) is
   adopted only when the index proves it equals what [hash_and_cost]
   would produce: [hi] is exactly the function end, and the decoded
   entries tile [lo, hi) back-to-back (see [tiled_slice]). Anything
   unverifiable is dropped and recomputed on demand. *)
let adopt_digests t digests =
  let b = t.buffer in
  let adopted = ref 0 in
  List.iter
    (fun (lo, hi, hex) ->
      if (not (Hashtbl.mem t.hashes lo)) && not (Hashtbl.mem t.precomputed lo) then begin
        match tiled_slice t ~addr:lo with
        | Some (pos, len, cost) when b.Disasm.base + pos = lo && lo + len = hi ->
            Hashtbl.replace t.precomputed lo (hex, cost);
            incr adopted
        | Some _ | None -> ()
      end)
    digests;
  !adopted

(* [hash_and_cost] mapped over a batch: functions whose bodies are
   contiguous in the buffer go through the multi-buffer
   [Sha256.digest_many] sweep (4–8 bodies per pass); the rest fall back
   to the streamed entry walk. Digests and costs are bit-identical to
   the scalar path either way. *)
let hash_many t addrs =
  let classified =
    List.map
      (fun addr ->
        match tiled_slice t ~addr with
        | Some (pos, len, cost) -> `Tiled (addr, pos, len, cost)
        | None -> `Plain addr)
      addrs
  in
  let tiled = List.filter_map (function `Tiled x -> Some x | `Plain _ -> None) classified in
  let code = t.buffer.Disasm.code in
  let bodies = List.map (fun (_, pos, len, _) -> Disasm.code_sub code ~pos ~len) tiled in
  let batched = Hashtbl.create (2 * List.length tiled) in
  List.iter2
    (fun (addr, _, _, cost) dg ->
      Hashtbl.replace batched addr (Crypto.Sha256.hex dg, cost))
    tiled
    (Crypto.Sha256.digest_many bodies);
  List.filter_map
    (function
      | `Tiled (addr, _, _, _) ->
          Option.map (fun hc -> (addr, hc)) (Hashtbl.find_opt batched addr)
      | `Plain addr -> Option.map (fun hc -> (addr, hc)) (hash_and_cost t ~addr))
    classified

let prehash ?(tasks = 8) ?(threshold = 16) ~run_all t =
  let candidates =
    List.filter
      (fun a -> (not (Hashtbl.mem t.hashes a)) && not (Hashtbl.mem t.precomputed a))
      (hash_candidates t)
  in
  let n = List.length candidates in
  if n >= threshold then begin
    let per_task = max 1 ((n + tasks - 1) / tasks) in
    let work =
      List.map (fun addrs () -> hash_many t addrs) (chunk per_task candidates)
    in
    (* Tasks only read [t]; the merge back into the store happens here,
       on the calling thread, so the index's tables are never mutated
       concurrently. *)
    List.iter
      (List.iter (fun (addr, hc) -> Hashtbl.replace t.precomputed addr hc))
      (run_all work)
  end
