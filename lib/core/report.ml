type t = {
  mutable instructions : int;
  disassembly : Sgx.Perf.t;
  analysis : Sgx.Perf.t;
  cfg : Sgx.Perf.t;
  callgraph : Sgx.Perf.t;
  summary : Sgx.Perf.t;
  policy : Sgx.Perf.t;
  loading : Sgx.Perf.t;
  provisioning : Sgx.Perf.t;
}

let create () =
  {
    instructions = 0;
    disassembly = Sgx.Perf.create ();
    analysis = Sgx.Perf.create ();
    cfg = Sgx.Perf.create ();
    callgraph = Sgx.Perf.create ();
    summary = Sgx.Perf.create ();
    policy = Sgx.Perf.create ();
    loading = Sgx.Perf.create ();
    provisioning = Sgx.Perf.create ();
  }

type row = {
  benchmark : string;
  n_instructions : int;
  disassembly_cycles : int;
  analysis_cycles : int;
  cfg_cycles : int;
  callgraph_cycles : int;
  summary_cycles : int;
  policy_cycles : int;
  loading_cycles : int;
}

let row ~benchmark t =
  let analysis_cycles = Sgx.Perf.total_cycles t.analysis in
  let cfg_cycles = Sgx.Perf.total_cycles t.cfg in
  let callgraph_cycles = Sgx.Perf.total_cycles t.callgraph in
  let summary_cycles = Sgx.Perf.total_cycles t.summary in
  {
    benchmark;
    n_instructions = t.instructions;
    disassembly_cycles = Sgx.Perf.total_cycles t.disassembly;
    analysis_cycles;
    cfg_cycles;
    callgraph_cycles;
    summary_cycles;
    (* The paper's "Policy Checking" column is the whole phase: shared
       index construction, CFG recovery (flow mode), the
       interprocedural tier (call graph + summaries) and per-policy
       visitors. *)
    policy_cycles =
      analysis_cycles + cfg_cycles + callgraph_cycles + summary_cycles
      + Sgx.Perf.total_cycles t.policy;
    loading_cycles = Sgx.Perf.total_cycles t.loading;
  }

(* Thousands separators, as the paper prints its tables. *)
let commas n =
  let s = string_of_int n in
  let len = String.length s in
  let b = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char b ',';
      Buffer.add_char b c)
    s;
  Buffer.contents b

let header =
  Printf.sprintf "%-12s %10s %16s %16s %14s" "Benchmark" "#Inst." "Disassembly"
    "Policy Checking" "Load+Reloc"

let row_to_string r =
  Printf.sprintf "%-12s %10s %16s %16s %14s" r.benchmark (commas r.n_instructions)
    (commas r.disassembly_cycles) (commas r.policy_cycles) (commas r.loading_cycles)

let wall_clock_ms ~cycles ~ghz = float_of_int cycles /. (ghz *. 1e9) *. 1000.
