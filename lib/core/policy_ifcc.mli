(** Indirect function-call compliance (paper, Section 5, "Restricting
    Indirect Function Calls").

    Checks that the executable carries Google IFCC instrumentation. The
    jump-table ranges (runs of [jmpq rel32; nopl (%rax)] entry pairs,
    the format LLVM's IFCC patch emits) and the indirect-call sites with
    their preceding-instruction windows come pre-classified from the
    shared analysis index; the module verifies that every indirect call
    is immediately preceded by the masking sequence

    {v lea table(%rip),%rax ; sub %eax,%ecx ; and $MASK,%rcx ;
       add %rax,%rcx ; callq *%rcx v}

    with consistent register dataflow, and that the computed target —
    table base plus the masked pointer offset — falls inside a detected
    jump table (a binary search over the index's sorted range array,
    where the pre-index policy paid a linear [List.exists] per site).
    Every offending site yields its own finding, in address order. *)

val make : unit -> Policy.t
