(** Indirect function-call compliance (paper, Section 5, "Restricting
    Indirect Function Calls").

    Checks that the executable carries Google IFCC instrumentation. The
    jump-table ranges (runs of [jmpq rel32; nopl (%rax)] entry pairs,
    the format LLVM's IFCC patch emits) and the indirect-call sites with
    their preceding-instruction windows come pre-classified from the
    shared analysis index; the module verifies that every indirect call
    is immediately preceded by the masking sequence

    {v lea table(%rip),%rax ; sub %eax,%ecx ; and $MASK,%rcx ;
       add %rax,%rcx ; callq *%rcx v}

    with consistent register dataflow, and that the computed target —
    table base plus the masked pointer offset — falls inside a detected
    jump table (a binary search over the index's sorted range array,
    where the pre-index policy paid a linear [List.exists] per site).
    Every offending site yields its own finding, in address order.

    Two modes. [`Pattern] is the paper's peephole exactly as described
    above — unsound: it only inspects the five instructions textually
    preceding the call, so a branch that jumps between mask and call
    passes. [`Flow] (the default) upgrades the check to a proof that
    the masking sequence {e dominates} the call with the target
    register unclobbered on every path: a matched pattern whose span
    contains no direct-branch target (one {!Analysis.branch_target_within}
    probe) is already straight-line sound and costs only two
    {!Costmodel.range_probe}s over the pattern price; any other site
    falls back to register dataflow ({!Dataflow.Regs}) over the
    function's recovered {!Cfg.t}. A call reachable with the register
    demoted to [Top] yields [ifcc-unmasked-on-path]. *)

val make :
  ?mode:[ `Flow | `Pattern ] ->
  ?depth:[ `Intra | `Interproc ] ->
  unit ->
  Policy.t
(** [depth] (default [`Intra], the paper-faithful behaviour above,
    preserved bit for bit for Figures 4/5) selects the interprocedural
    tier, which cuts both ways. Precision: under [`Interproc] the
    dataflow uses {!Summary.regs_problem_via}, so a resolved direct
    call applies the callee's summary instead of demoting every
    register — a masking sequence established in a helper function
    survives the call and the caller's [add; callq *] still proves
    in-table, where [`Intra] reports [ifcc-unmasked-on-path].
    Soundness: every intraprocedural proof assumes the function has a
    single entry, so a site accepted by flow mode is re-rejected with
    [ifcc-unmasked-interproc] when the shared {!Policy.callgraph_of}
    graph records a [Jump_into] edge — another function jumping into
    this one's body. Only [`Flow] mode consults [depth]. *)
