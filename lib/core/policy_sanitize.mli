(** Entry-point sanitization compliance — the fifth builtin policy,
    and the first that is interprocedural by construction.

    The host controls every register and the flags at EENTER, so an
    enclave entry point that consumes inherited state hands the host an
    input channel the interface never declared (Guardian-style
    interface-orderliness, applied to register state). The policy
    identifies entry points by the toolchain's interface naming
    convention ([enclave_entry], or an [ecall_] prefix — ordinary
    functions and [_start] are not entries) and proves, via the
    must-init dataflow of {!Summary.must_init_problem}, that on every
    path from the entry each of [%rdi %rsi %rdx %rcx %r8 %r9] and the
    flags ({!Summary.sanitize_mask}) is written before it is first
    consumed.

    Delegation counts: a direct call applies the callee's summary, so
    an entry that calls a scrubbing helper first is compliant, while a
    callee that itself consumes unsanitized state propagates the
    obligation to the entry's call site ({!Summary.effective_reads}).
    Unknown and indirect callees conservatively consume everything.

    Findings, in address order: [sanitize-unscrubbed-reg] at the first
    consuming instruction per offending register,
    [sanitize-unscrubbed-flags] for a branch on inherited flags, and
    [sanitize-entry-outside-code] when an entry symbol has no decoded
    instructions. Binaries with no entry-named functions — including
    all seven paper evaluation workloads — are vacuously compliant. *)

val name : string
(** ["sanitize"] *)

val is_entry_name : string -> bool
(** The interface naming convention shared with the DSL transcription's
    [P_fn_is_entry] primitive. *)

val tracked_regs : int list
(** The argument-register numbers the policy reports individually, in
    emission order (ascending {!X86.Reg.number}); the flags bit is
    reported separately. Shared with the DSL transcription so both
    engines emit identical finding sequences. *)

val make : unit -> Policy.t
