type entry = {
  addr : int;
  insn : X86.Insn.t;
  len : int;
  meta : X86.Decoder.meta;
}

type buffer = {
  entries : entry array;
  base : int;
  code : X86.Decoder.src;
  index : (int, int) Hashtbl.t;
}

(* The mli exposes buffer without the index field; reconstruct accessors
   here. *)

let index_of_addr b addr = Hashtbl.find_opt b.index addr

let code_length = X86.Decoder.src_length

let code_get (c : X86.Decoder.src) i =
  match c with
  | X86.Decoder.Str s -> s.[i]
  | X86.Decoder.Big b -> Elf64.Buf.Big.get b i

let code_sub (c : X86.Decoder.src) ~pos ~len =
  match c with
  | X86.Decoder.Str s -> String.sub s pos len
  | X86.Decoder.Big b -> Elf64.Buf.Big.sub_string b ~pos ~len

let bytes_between b ~lo ~hi =
  if hi < lo || lo < b.base || hi > b.base + code_length b.code then
    invalid_arg "Disasm.bytes_between";
  code_sub b.code ~pos:(lo - b.base) ~len:(hi - lo)

let records_per_page = Sgx.Epc.page_size / Costmodel.buffer_record_bytes

let run_src ?(alloc = `Page) perf ~src ~base ~symbols =
  let roots =
    List.filter_map
      (fun (s : Elf64.Types.symbol) ->
        if Elf64.Types.symbol_is_func s then Some (s.st_value - base) else None)
      symbols
  in
  match X86.Nacl.validate_src ~roots src with
  | Error v -> Error v
  | Ok decoded ->
      let n = Array.length decoded in
      (* Decode cost: table dispatch + per byte + per prefix byte. *)
      Array.iter
        (fun (d : X86.Decoder.decoded) ->
          Sgx.Perf.count_cycles perf
            (Costmodel.decode_base
            + (Costmodel.decode_per_byte * d.meta.len)
            + (Costmodel.decode_per_prefix * d.meta.n_prefix)))
        decoded;
      (* Buffer memory comes from malloc, which exits the enclave via a
         trampoline. The paper's optimization allocates a page at a time
         (Section 4); the naive alternative pays one trampoline per
         instruction record (the ablation benchmark measures the gap). *)
      let trampolines =
        match alloc with
        | `Page -> (n + records_per_page - 1) / records_per_page
        | `Record -> n
      in
      for _ = 1 to trampolines do Sgx.Perf.trampoline perf done;
      let entries =
        Array.map
          (fun (d : X86.Decoder.decoded) ->
            { addr = base + d.off; insn = d.insn; len = d.meta.len; meta = d.meta })
          decoded
      in
      let index = Hashtbl.create (2 * n) in
      Array.iteri (fun i e -> Hashtbl.replace index e.addr i) entries;
      let symhash = Symhash.build perf symbols in
      Ok ({ entries; base; code = src; index }, symhash)

let run ?alloc perf ~code ~base ~symbols =
  run_src ?alloc perf ~src:(X86.Decoder.Str code) ~base ~symbols
