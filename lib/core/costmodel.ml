(* Calibrated once against the Nginx row of Figure 3 (262,228
   instructions; 694M cycles disassembly, 1,307M cycles library-linking
   policy, 128,696 cycles loading). See EXPERIMENTS.md for the
   paper-vs-measured table these constants produce. *)

(* Disassembly *)
let decode_base = 450
let decode_per_byte = 170
let decode_per_prefix = 150
let buffer_record_bytes = 64
let symhash_insert = 100_000

(* Policy checks *)
let policy_step = 40
let index_step = 45
let hash_memo_lookup = 60
let call_target_compute = 400
let hash_per_insn = 300
let hash_per_byte = 260
let hash_finalize = 4_000
let backtrack_step = 30
let pattern_probe = 55
let range_probe = 60

(* CFG recovery and dataflow (flow-sensitive policy mode) *)
let cfg_leader_step = 12
let cfg_block = 25
let cfg_edge = 20
let dom_step = 18
let dataflow_step = 15
let dataflow_join = 25

(* Interprocedural tier: call graph and function summaries *)
let callgraph_scan_step = 10
let callgraph_edge = 35
let callgraph_scc_step = 20
let summary_step = 18
let summary_memo_lookup = 50
let summary_apply = 30

(* Loading *)
let load_setup = 3_000
let load_per_page = 2
let reloc_apply = 100

(* Policy VM (negotiated programs interpreted in-enclave) *)
let vm_step = 6
let vm_decode_per_byte = 8
let vm_fuel_base = 1_000_000
let vm_fuel_per_entry = 4_000
let vm_charge_cap = 1_024
