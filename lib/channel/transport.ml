type endpoint = {
  inbox : Wire.t Queue.t;
  peer_inbox : Wire.t Queue.t;
  tamper : Wire.t -> Wire.t;
}

let send ep msg =
  (* Round-trip through the serializer: what arrives is what the wire
     carried, even under a tampering adversary. *)
  let bytes = Wire.to_bytes (ep.tamper msg) in
  match Wire.of_bytes bytes with
  | Some msg' -> Queue.add msg' ep.peer_inbox
  | None -> () (* garbled beyond parsing: dropped, like a bad frame *)

let recv ep = if Queue.is_empty ep.inbox then None else Some (Queue.pop ep.inbox)
let pending ep = not (Queue.is_empty ep.inbox)

let pending_bytes ep =
  Queue.fold (fun acc m -> acc + String.length (Wire.to_bytes m)) 0 ep.inbox

let pair ?(tamper = Fun.id) () =
  let a = Queue.create () and b = Queue.create () in
  ( { inbox = a; peer_inbox = b; tamper },
    { inbox = b; peer_inbox = a; tamper } )

let drain ep =
  let rec go acc = match recv ep with None -> List.rev acc | Some m -> go (m :: acc) in
  go []
