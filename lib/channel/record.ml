(* The streaming record layer (EGREC1): numbered AEAD records in the
   image of QUIC packet protection. Each record carries its key epoch
   and 64-bit record number in the clear; the nonce is the per-epoch IV
   with the record number folded into its first eight bytes, so no
   (key, nonce) pair is ever reused — the fix for the legacy channel's
   fixed-nonce CTR. Keys come from an HKDF schedule seeded by the
   session's traffic secret; a Key_update record ratchets the epoch
   secret forward and resets the record number. *)

let magic = "EGREC1"

(* --- canonical inner framing --------------------------------------- *)

type meta = { text_addr : int; text_off : int; functions : (int * int) list }

type plaintext =
  | Stream of { offset : int; data : string }
  | Fin of { total_len : int; digest : string }
  | Key_update
  | Meta of meta

let u32 n = String.init 4 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))
let u64 n = String.init 8 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

let read_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let frame = function
  | Stream { offset; data } -> "\x01" ^ u32 offset ^ data
  | Fin { total_len; digest } ->
      if String.length digest <> 32 then invalid_arg "Record.frame: digest must be 32 bytes";
      "\x02" ^ u32 total_len ^ digest
  | Key_update -> "\x03"
  | Meta { text_addr; text_off; functions } ->
      "\x04" ^ u32 text_addr ^ u32 text_off
      ^ u32 (List.length functions)
      ^ String.concat "" (List.map (fun (lo, hi) -> u32 lo ^ u32 hi) functions)

(* Strict and canonical: every byte string decodes to at most one
   plaintext, and [frame (Option.get (unframe s)) = s]. *)
let unframe s =
  let len = String.length s in
  if len = 0 then None
  else
    match s.[0] with
    | '\x01' ->
        if len < 5 then None
        else Some (Stream { offset = read_u32 s 1; data = String.sub s 5 (len - 5) })
    | '\x02' ->
        if len <> 37 then None
        else Some (Fin { total_len = read_u32 s 1; digest = String.sub s 5 32 })
    | '\x03' -> if len <> 1 then None else Some Key_update
    | '\x04' ->
        if len < 13 then None
        else begin
          let count = read_u32 s 9 in
          if count > 0xffff || len <> 13 + (8 * count) then None
          else
            Some
              (Meta
                 {
                   text_addr = read_u32 s 1;
                   text_off = read_u32 s 5;
                   functions = List.init count (fun i -> (read_u32 s (13 + (8 * i)), read_u32 s (17 + (8 * i))));
                 })
        end
    | _ -> None

(* --- key schedule --------------------------------------------------- *)

(* Per-epoch traffic material. The epoch secret ratchets forward
   one-way: compromise of epoch n+1 material reveals nothing about
   records sealed under epoch n. *)
type secrets = { enc : Crypto.Aes.key; mac : string; iv : string; next : string }

let derive_secrets epoch_secret =
  let prk = Crypto.Hkdf.extract ~salt:magic epoch_secret in
  {
    enc = Crypto.Aes.expand (Crypto.Hkdf.expand ~prk ~info:"key" 32);
    mac = Crypto.Hkdf.expand ~prk ~info:"mac" 32;
    iv = Crypto.Hkdf.expand ~prk ~info:"iv" 16;
    next = Crypto.Hkdf.expand ~prk ~info:"next" 32;
  }

(* Labelled secrets hanging off the handshake. *)
let traffic_secret ~key = Crypto.Hkdf.derive ~salt:magic ~ikm:key ~info:"traffic" 32
let resumption_secret ~key = Crypto.Hkdf.derive ~salt:magic ~ikm:key ~info:"resumption" 32

let zero_rtt_secret ~resumption ~nonce =
  Crypto.Hkdf.derive ~salt:magic ~ikm:resumption ~info:("0rtt" ^ nonce) 32

let confirm_key resumption = Crypto.Hkdf.derive ~salt:magic ~ikm:resumption ~info:"confirm" 32
let confirm ~resumption ~nonce = Crypto.Hmac.sha256 ~key:(confirm_key resumption) nonce

let check_confirm ~resumption ~nonce ~tag =
  Crypto.Hmac.verify ~key:(confirm_key resumption) ~msg:nonce ~tag

(* Nonce: per-epoch IV with the record number XORed into the FIRST
   eight bytes. AES-CTR's block counter lives in the last eight bytes
   (see {!Crypto.Aes.ctr}), so distinct record numbers give disjoint
   counter-block spaces no matter how long each record is. *)
let nonce_for iv rn =
  String.init 16 (fun i ->
      if i < 8 then Char.chr (Char.code iv.[i] lxor ((rn lsr (8 * (7 - i))) land 0xff))
      else iv.[i])

let tag_of secrets ~epoch ~rn ct =
  Crypto.Hmac.sha256 ~key:secrets.mac (magic ^ u32 epoch ^ u64 rn ^ ct)

(* --- writer ---------------------------------------------------------- *)

type writer = { mutable wepoch : int; mutable wrn : int; mutable wsecrets : secrets }

let writer ~secret = { wepoch = 0; wrn = 0; wsecrets = derive_secrets secret }

let seal w pt =
  let ct = Crypto.Aes.ctr ~key:w.wsecrets.enc ~nonce:(nonce_for w.wsecrets.iv w.wrn) (frame pt) in
  let msg =
    Wire.Record { epoch = w.wepoch; rn = w.wrn; ciphertext = ct; tag = tag_of w.wsecrets ~epoch:w.wepoch ~rn:w.wrn ct }
  in
  w.wrn <- w.wrn + 1;
  msg

(* Announce the ratchet under the old keys, then step to the new
   epoch. The announcement is the epoch's last record. *)
let update_key w =
  let msg = seal w Key_update in
  w.wepoch <- w.wepoch + 1;
  w.wrn <- 0;
  w.wsecrets <- derive_secrets w.wsecrets.next;
  msg

let writer_epoch w = w.wepoch

(* --- reader ---------------------------------------------------------- *)

type event =
  | Accept of plaintext
  | Corrupt of string
  | Skip
  | Recovered

type reader = {
  mutable repoch : int;
  mutable rrn : int;  (* next expected record number *)
  mutable rsecrets : secrets;
  mutable poisoned : bool;
  mutable accepted : int;
  mutable epoch_updates : int;
}

let reader ~secret =
  { repoch = 0; rrn = 0; rsecrets = derive_secrets secret; poisoned = false; accepted = 0; epoch_updates = 0 }

let reader_epoch r = r.repoch
let reader_poisoned r = r.poisoned
let records_accepted r = r.accepted
let epoch_updates r = r.epoch_updates

(* One failure poisons the stream: exactly one [Corrupt] surfaces, the
   rest of the damaged stretch is [Skip]ped, and the next authentic
   transfer boundary — a [Fin] or a [Key_update] ratchet — resyncs the
   record counter and clears the poison ([Recovered]). Mirrors the
   legacy Mux's discard-until-Transfer_done recovery. *)
let read r ~epoch ~rn ~ciphertext ~tag =
  let fail why =
    if r.poisoned then Skip
    else begin
      r.poisoned <- true;
      Corrupt why
    end
  in
  if epoch <> r.repoch then
    fail (Printf.sprintf "cross-epoch record (epoch %d, current %d)" epoch r.repoch)
  else if
    not
      (Crypto.Hmac.verify ~key:r.rsecrets.mac
         ~msg:(magic ^ u32 epoch ^ u64 rn ^ ciphertext)
         ~tag)
  then fail (Printf.sprintf "record %d failed authentication" rn)
  else begin
    let plain = Crypto.Aes.ctr ~key:r.rsecrets.enc ~nonce:(nonce_for r.rsecrets.iv rn) ciphertext in
    match unframe plain with
    | None -> fail (Printf.sprintf "record %d: malformed EGREC1 frame" rn)
    | Some pt ->
        let ratchet () =
          r.repoch <- r.repoch + 1;
          r.rrn <- 0;
          r.rsecrets <- derive_secrets r.rsecrets.next;
          r.epoch_updates <- r.epoch_updates + 1
        in
        if r.poisoned then begin
          (* Authentic records inside a poisoned stretch are dropped,
             but transfer boundaries still resync the stream. *)
          match pt with
          | Fin _ ->
              r.poisoned <- false;
              r.rrn <- rn + 1;
              Recovered
          | Key_update ->
              ratchet ();
              r.poisoned <- false;
              Recovered
          | Stream _ | Meta _ -> Skip
        end
        else if rn <> r.rrn then
          fail (Printf.sprintf "record %d out of order (expected %d)" rn r.rrn)
        else begin
          r.rrn <- rn + 1;
          r.accepted <- r.accepted + 1;
          match pt with
          | Key_update ->
              ratchet ();
              Accept Key_update
          | pt -> Accept pt
        end
  end

(* --- whole-payload convenience --------------------------------------- *)

let block_size = 4096

(* The streamed transfer: optional metadata up front (so the inspector
   can start speculative per-function work while pages are in flight),
   page-sized stream records in file order, and a Fin trailer carrying
   the whole-payload digest — the same commitment the legacy
   Transfer_done made. The Seq is lazy and one-shot: each pull seals
   the next record, so a pipelined driver interleaves production with
   the inspector's consumption instead of encrypting everything up
   front. *)
let payload_record_seq ?meta w payload =
  let len = String.length payload in
  let rec body offset () =
    if offset >= len then
      Seq.Cons (seal w (Fin { total_len = len; digest = Crypto.Sha256.digest payload }), Seq.empty)
    else begin
      let n = min block_size (len - offset) in
      Seq.Cons (seal w (Stream { offset; data = String.sub payload offset n }), body (offset + n))
    end
  in
  match meta with
  | None -> body 0
  | Some m -> fun () -> Seq.Cons (seal w (Meta m), body 0)

let payload_records ?meta w payload = List.of_seq (payload_record_seq ?meta w payload)
