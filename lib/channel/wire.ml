type t =
  | Client_hello of { challenge : string }
  | Quote_response of { quote : string; enclave_pub : string }
  | Wrapped_key of { wrapped : string }
  | Code_block of { seq : int; offset : int; ciphertext : string; tag : string }
  | Transfer_done of { total_len : int; digest : string }
  | Verdict of { accepted : bool; detail : string }
  | Policy_offer of { programs : (string * string) list }
  | Policy_accept of { digest : string }
  | Record of { epoch : int; rn : int; ciphertext : string; tag : string }
  | Ticket of { blob : string }
  | Resume of { ticket : string; nonce : string }
  | Resume_accept of { confirm : string }
  | Peer_hello of { node : int; nonce : string }
  | Peer_quote of { node : int; echo : string; quote : string }
  | Verdict_push of {
      node : int;
      key : string;
      verdict : string;
      quote : string;
      checkpoint : string;
      index : int;
      proof : string list;
    }
  | Verdict_pull of { node : int; key : string }
  | Checkpoint_gossip of { node : int; checkpoint : string }

let u32 n = String.init 4 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))
let u64 n = String.init 8 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

let field s = u32 (String.length s) ^ s

(* Parsing cursor over length-prefixed fields. *)
exception Short

let read_u32 s pos =
  if pos + 4 > String.length s then raise Short;
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let read_u64 s pos =
  if pos + 8 > String.length s then raise Short;
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

let read_field s pos =
  let len = read_u32 s pos in
  if pos + 4 + len > String.length s then raise Short;
  (String.sub s (pos + 4) len, pos + 4 + len)

let to_bytes = function
  | Client_hello { challenge } -> "\x01" ^ field challenge
  | Quote_response { quote; enclave_pub } -> "\x02" ^ field quote ^ field enclave_pub
  | Wrapped_key { wrapped } -> "\x03" ^ field wrapped
  | Code_block { seq; offset; ciphertext; tag } ->
      "\x04" ^ u32 seq ^ u32 offset ^ field ciphertext ^ field tag
  | Transfer_done { total_len; digest } -> "\x05" ^ u32 total_len ^ field digest
  | Verdict { accepted; detail } ->
      "\x06" ^ (if accepted then "\x01" else "\x00") ^ field detail
  | Policy_offer { programs } ->
      "\x07" ^ u32 (List.length programs)
      ^ String.concat "" (List.map (fun (name, blob) -> field name ^ field blob) programs)
  | Policy_accept { digest } -> "\x08" ^ field digest
  | Record { epoch; rn; ciphertext; tag } ->
      "\x09" ^ u32 epoch ^ u64 rn ^ field ciphertext ^ field tag
  | Ticket { blob } -> "\x0a" ^ field blob
  | Resume { ticket; nonce } -> "\x0b" ^ field ticket ^ field nonce
  | Resume_accept { confirm } -> "\x0c" ^ field confirm
  | Peer_hello { node; nonce } -> "\x0d" ^ u32 node ^ field nonce
  | Peer_quote { node; echo; quote } -> "\x0e" ^ u32 node ^ field echo ^ field quote
  | Verdict_push { node; key; verdict; quote; checkpoint; index; proof } ->
      "\x0f" ^ u32 node ^ field key ^ field verdict ^ field quote ^ field checkpoint
      ^ u32 index ^ u32 (List.length proof)
      ^ String.concat "" (List.map field proof)
  | Verdict_pull { node; key } -> "\x10" ^ u32 node ^ field key
  | Checkpoint_gossip { node; checkpoint } -> "\x11" ^ u32 node ^ field checkpoint

let of_bytes s =
  try
    if s = "" then None
    else
      let body pos = pos in
      match s.[0] with
      | '\x01' ->
          let challenge, fin = read_field s (body 1) in
          if fin <> String.length s then None else Some (Client_hello { challenge })
      | '\x02' ->
          let quote, p = read_field s (body 1) in
          let enclave_pub, fin = read_field s p in
          if fin <> String.length s then None else Some (Quote_response { quote; enclave_pub })
      | '\x03' ->
          let wrapped, fin = read_field s (body 1) in
          if fin <> String.length s then None else Some (Wrapped_key { wrapped })
      | '\x04' ->
          let seq = read_u32 s 1 in
          let offset = read_u32 s 5 in
          let ciphertext, p = read_field s 9 in
          let tag, fin = read_field s p in
          if fin <> String.length s then None
          else Some (Code_block { seq; offset; ciphertext; tag })
      | '\x05' ->
          let total_len = read_u32 s 1 in
          let digest, fin = read_field s 5 in
          if fin <> String.length s then None else Some (Transfer_done { total_len; digest })
      | '\x06' ->
          if String.length s < 2 then None
          else begin
            let accepted = s.[1] = '\x01' in
            let detail, fin = read_field s 2 in
            if fin <> String.length s then None else Some (Verdict { accepted; detail })
          end
      | '\x07' ->
          let count = read_u32 s 1 in
          (* An honest offer is small; cap before allocating. *)
          if count > 0xffff then None
          else begin
            let rec pairs n pos acc =
              if n = 0 then Some (List.rev acc, pos)
              else begin
                let name, p = read_field s pos in
                let blob, p = read_field s p in
                pairs (n - 1) p ((name, blob) :: acc)
              end
            in
            match pairs count 5 [] with
            | Some (programs, fin) when fin = String.length s ->
                Some (Policy_offer { programs })
            | _ -> None
          end
      | '\x08' ->
          let digest, fin = read_field s (body 1) in
          if fin <> String.length s then None else Some (Policy_accept { digest })
      | '\x09' ->
          let epoch = read_u32 s 1 in
          let rn = read_u64 s 5 in
          let ciphertext, p = read_field s 13 in
          let tag, fin = read_field s p in
          if fin <> String.length s then None else Some (Record { epoch; rn; ciphertext; tag })
      | '\x0a' ->
          let blob, fin = read_field s (body 1) in
          if fin <> String.length s then None else Some (Ticket { blob })
      | '\x0b' ->
          let ticket, p = read_field s (body 1) in
          let nonce, fin = read_field s p in
          if fin <> String.length s then None else Some (Resume { ticket; nonce })
      | '\x0c' ->
          let confirm, fin = read_field s (body 1) in
          if fin <> String.length s then None else Some (Resume_accept { confirm })
      | '\x0d' ->
          let node = read_u32 s 1 in
          let nonce, fin = read_field s 5 in
          if fin <> String.length s then None else Some (Peer_hello { node; nonce })
      | '\x0e' ->
          let node = read_u32 s 1 in
          let echo, p = read_field s 5 in
          let quote, fin = read_field s p in
          if fin <> String.length s then None else Some (Peer_quote { node; echo; quote })
      | '\x0f' ->
          let node = read_u32 s 1 in
          let key, p = read_field s 5 in
          let verdict, p = read_field s p in
          let quote, p = read_field s p in
          let checkpoint, p = read_field s p in
          let index = read_u32 s p in
          let count = read_u32 s (p + 4) in
          (* An honest inclusion proof has <= log2(leaves) hashes. *)
          if count > 64 then None
          else begin
            let rec hashes n pos acc =
              if n = 0 then Some (List.rev acc, pos)
              else begin
                let h, p = read_field s pos in
                hashes (n - 1) p (h :: acc)
              end
            in
            match hashes count (p + 8) [] with
            | Some (proof, fin) when fin = String.length s ->
                Some (Verdict_push { node; key; verdict; quote; checkpoint; index; proof })
            | _ -> None
          end
      | '\x10' ->
          let node = read_u32 s 1 in
          let key, fin = read_field s 5 in
          if fin <> String.length s then None else Some (Verdict_pull { node; key })
      | '\x11' ->
          let node = read_u32 s 1 in
          let checkpoint, fin = read_field s 5 in
          if fin <> String.length s then None else Some (Checkpoint_gossip { node; checkpoint })
      | _ -> None
  with Short -> None

let equal a b = a = b

let describe = function
  | Client_hello _ -> "client-hello"
  | Quote_response _ -> "quote-response"
  | Wrapped_key _ -> "wrapped-key"
  | Code_block { seq; _ } -> Printf.sprintf "code-block #%d" seq
  | Transfer_done _ -> "transfer-done"
  | Verdict { accepted; _ } -> if accepted then "verdict: accepted" else "verdict: rejected"
  | Policy_offer { programs } -> Printf.sprintf "policy-offer (%d programs)" (List.length programs)
  | Policy_accept _ -> "policy-accept"
  | Record { epoch; rn; _ } -> Printf.sprintf "record #%d (epoch %d)" rn epoch
  | Ticket _ -> "session-ticket"
  | Resume _ -> "resume"
  | Resume_accept _ -> "resume-accept"
  | Peer_hello { node; _ } -> Printf.sprintf "peer-hello (node %d)" node
  | Peer_quote { node; _ } -> Printf.sprintf "peer-quote (node %d)" node
  | Verdict_push { node; index; _ } ->
      Printf.sprintf "verdict-push (node %d, leaf %d)" node index
  | Verdict_pull { node; _ } -> Printf.sprintf "verdict-pull (node %d)" node
  | Checkpoint_gossip { node; _ } -> Printf.sprintf "checkpoint-gossip (node %d)" node
