(** Wire format of the client <-> enclave provisioning protocol
    (paper, Section 3, "Overall Design"):

    + the client sends a challenge;
    + the enclave answers with an attestation quote whose report data
      binds its freshly generated RSA public key;
    + the client wraps a 256-bit AES session key under that public key;
    + when a policy set was negotiated out of band, the client offers
      the serialized policy programs; the enclave checks their digest
      against the one measured into it and acknowledges;
    + the client streams its executable in encrypted, authenticated
      page-sized blocks, then a final digest;
    + the enclave reports the per-policy verdicts.

    Messages serialize to length-prefixed byte strings so a transport
    only moves opaque buffers. *)

type t =
  | Client_hello of { challenge : string }
  | Quote_response of { quote : string; enclave_pub : string }
  | Wrapped_key of { wrapped : string }
  | Code_block of { seq : int; offset : int; ciphertext : string; tag : string }
  | Transfer_done of { total_len : int; digest : string }
  | Verdict of { accepted : bool; detail : string }
  | Policy_offer of { programs : (string * string) list }
      (** [(name, canonical blob)] pairs, in the agreed order *)
  | Policy_accept of { digest : string }
      (** the policy-set digest the enclave verified against its
          measurement *)
  | Record of { epoch : int; rn : int; ciphertext : string; tag : string }
      (** one streaming AEAD record ({!Record} module): key epoch and
          64-bit record number in the clear (both authenticated by
          [tag]), sealed EGREC1 frame inside *)
  | Ticket of { blob : string }
      (** a resumption ticket sealed by the inspector — opaque to the
          client, bound to measurement x policy digest x ticket epoch *)
  | Resume of { ticket : string; nonce : string }
      (** 0-RTT opener: replaces [Client_hello]; [nonce] salts the
          resumed traffic keys *)
  | Resume_accept of { confirm : string }
      (** inspector's proof it unsealed the ticket: HMAC over the
          client's nonce under a key derived from the ticket secret *)
  | Peer_hello of { node : int; nonce : string }
      (** fleet handshake opener: node index and a fresh challenge the
          peer must bind into its quote *)
  | Peer_quote of { node : int; echo : string; quote : string }
      (** answer to {!Peer_hello}: [echo] returns the challenger's
          nonce, [quote] ({!Sgx.Quote.to_bytes}) names the responder's
          MAGE-derived fleet identity and binds the nonce *)
  | Verdict_push of {
      node : int;
      key : string;  (** verdict-cache content address *)
      verdict : string;  (** canonical cache encoding of the verdict *)
      quote : string;
          (** sender quote binding SHA-256 of key x findings digest *)
      checkpoint : string;
          (** sender's latest quote-signed audit checkpoint *)
      index : int;  (** leaf index of this verdict in the sender's log *)
      proof : string list;  (** inclusion proof for that leaf *)
    }  (** offer a verdict to a peer, with everything needed to audit it *)
  | Verdict_pull of { node : int; key : string }
      (** ask a peer to push its verdict for [key], if it has one *)
  | Checkpoint_gossip of { node : int; checkpoint : string }
      (** periodic broadcast of a node's latest audit checkpoint *)

val to_bytes : t -> string
val of_bytes : string -> t option

val equal : t -> t -> bool
val describe : t -> string
