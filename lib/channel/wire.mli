(** Wire format of the client <-> enclave provisioning protocol
    (paper, Section 3, "Overall Design"):

    + the client sends a challenge;
    + the enclave answers with an attestation quote whose report data
      binds its freshly generated RSA public key;
    + the client wraps a 256-bit AES session key under that public key;
    + when a policy set was negotiated out of band, the client offers
      the serialized policy programs; the enclave checks their digest
      against the one measured into it and acknowledges;
    + the client streams its executable in encrypted, authenticated
      page-sized blocks, then a final digest;
    + the enclave reports the per-policy verdicts.

    Messages serialize to length-prefixed byte strings so a transport
    only moves opaque buffers. *)

type t =
  | Client_hello of { challenge : string }
  | Quote_response of { quote : string; enclave_pub : string }
  | Wrapped_key of { wrapped : string }
  | Code_block of { seq : int; offset : int; ciphertext : string; tag : string }
  | Transfer_done of { total_len : int; digest : string }
  | Verdict of { accepted : bool; detail : string }
  | Policy_offer of { programs : (string * string) list }
      (** [(name, canonical blob)] pairs, in the agreed order *)
  | Policy_accept of { digest : string }
      (** the policy-set digest the enclave verified against its
          measurement *)
  | Record of { epoch : int; rn : int; ciphertext : string; tag : string }
      (** one streaming AEAD record ({!Record} module): key epoch and
          64-bit record number in the clear (both authenticated by
          [tag]), sealed EGREC1 frame inside *)
  | Ticket of { blob : string }
      (** a resumption ticket sealed by the inspector — opaque to the
          client, bound to measurement x policy digest x ticket epoch *)
  | Resume of { ticket : string; nonce : string }
      (** 0-RTT opener: replaces [Client_hello]; [nonce] salts the
          resumed traffic keys *)
  | Resume_accept of { confirm : string }
      (** inspector's proof it unsealed the ticket: HMAC over the
          client's nonce under a key derived from the ticket secret *)

val to_bytes : t -> string
val of_bytes : string -> t option

val equal : t -> t -> bool
val describe : t -> string
