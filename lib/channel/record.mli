(** Streaming AEAD record layer ([EGREC1]).

    Replaces the legacy [Code_block]/[Transfer_done] transfer with
    numbered records in the image of QUIC packet protection: every
    record carries its key epoch and 64-bit record number in the clear
    (both authenticated), the nonce folds the record number into a
    per-epoch IV so no (key, nonce) pair ever repeats, and traffic keys
    come from an HKDF extract/expand schedule instead of ad-hoc HMAC
    labels. [Key_update] ratchets the epoch secret one-way and resets
    the record number. *)

type meta = { text_addr : int; text_off : int; functions : (int * int) list }
(** Client hints for pipelined inspection: the text section's vaddr and
    file offset plus the [(start, end)] vaddr range of each function.
    Advisory only — the inspector verifies everything it adopts against
    its own authoritative parse. *)

(** Inner frame of one record, under the strict canonical EGREC1 codec
    (fuzzed in [test_channel.ml]): decoding is total and unambiguous,
    and [frame] o [unframe] is the identity on valid encodings. *)
type plaintext =
  | Stream of { offset : int; data : string }
      (** payload bytes at an absolute transfer offset *)
  | Fin of { total_len : int; digest : string }
      (** end of transfer: length and SHA-256 of the whole payload *)
  | Key_update  (** ratchet announcement, sealed under the old epoch *)
  | Meta of meta

val frame : plaintext -> string
val unframe : string -> plaintext option

val traffic_secret : key:string -> string
(** Streaming traffic secret derived from a 32-byte session key. *)

val resumption_secret : key:string -> string
(** Resumption master secret both ends derive after a full handshake;
    the inspector seals it into the ticket, the client stashes it. *)

val zero_rtt_secret : resumption:string -> nonce:string -> string
(** Traffic secret for a 0-RTT resumed transfer, salted by the client's
    fresh [Resume] nonce. *)

val confirm : resumption:string -> nonce:string -> string
(** The [Resume_accept] confirmation MAC: proves the responder unsealed
    the ticket (and thus knows the resumption secret). *)

val check_confirm : resumption:string -> nonce:string -> tag:string -> bool
(** Constant-time-ish verification of {!confirm}. *)

val block_size : int

(** Sealing side: owns the epoch, record number, and key schedule. *)
type writer

val writer : secret:string -> writer
val seal : writer -> plaintext -> Wire.t
val update_key : writer -> Wire.t
(** Seal a [Key_update] under the current epoch, then step the writer
    to the next epoch (record number resets to 0). *)

val writer_epoch : writer -> int

val payload_records : ?meta:meta -> writer -> string -> Wire.t list
(** The full streamed transfer: the optional [Meta] hint, page-sized
    [Stream] records in file order, and the [Fin] trailer committing to
    the whole payload's length and digest. *)

val payload_record_seq : ?meta:meta -> writer -> string -> Wire.t Seq.t
(** Lazy, one-shot variant of {!payload_records}: each pull seals the
    next record, so a pipelined driver can interleave production with
    consumption. Do not traverse twice (the writer is stateful). *)

(** Receiving side. One corrupt record yields exactly one [Corrupt]
    event; the rest of the damaged stretch is [Skip]ped and the next
    authentic transfer boundary ([Fin] or [Key_update]) resyncs the
    stream ([Recovered]) — the pipeline stays usable. *)
type reader

type event =
  | Accept of plaintext
  | Corrupt of string
  | Skip
  | Recovered

val reader : secret:string -> reader
val read : reader -> epoch:int -> rn:int -> ciphertext:string -> tag:string -> event
val reader_epoch : reader -> int
val reader_poisoned : reader -> bool
val records_accepted : reader -> int
val epoch_updates : reader -> int
