type t = {
  aes : Crypto.Aes.key;
  mac_key : string;
}

let block_size = 4096

let create ~key =
  if String.length key <> 32 then invalid_arg "Session.create: need a 32-byte key";
  (* Independent cipher and MAC keys derived from the session key. *)
  {
    aes = Crypto.Aes.expand (Crypto.Hmac.sha256 ~key "engarde-block-cipher");
    mac_key = Crypto.Hmac.sha256 ~key "engarde-block-mac";
  }

let nonce = String.make 16 '\x00'

let u32 n = String.init 4 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

let mac t ~seq ~offset ct = Crypto.Hmac.sha256 ~key:t.mac_key (u32 seq ^ u32 offset ^ ct)

let encrypt_block t ~seq ~offset plain =
  let ciphertext = Crypto.Aes.ctr_at ~key:t.aes ~nonce ~offset plain in
  Wire.Code_block { seq; offset; ciphertext; tag = mac t ~seq ~offset ciphertext }

let decrypt_block t ~seq ~offset ~ciphertext ~tag =
  if not (Crypto.Hmac.verify ~key:t.mac_key ~msg:(u32 seq ^ u32 offset ^ ciphertext) ~tag) then
    None
  else Some (Crypto.Aes.ctr_at ~key:t.aes ~nonce ~offset ciphertext)

let split_payload payload =
  let len = String.length payload in
  let rec go seq offset acc =
    if offset >= len then List.rev acc
    else begin
      let n = min block_size (len - offset) in
      go (seq + 1) (offset + n) ((seq, offset, String.sub payload offset n) :: acc)
    end
  in
  go 0 0 []

(* Canonical digest of a negotiated policy set: order-sensitive,
   length-prefixed, domain-separated. Both sides compute it — the
   client over what it offers, the enclave over what arrived — and the
   enclave compares against the digest measured into it at build. *)
let policy_set_digest programs =
  let b = Buffer.create 256 in
  Buffer.add_string b "EGPSET1\x00";
  List.iter
    (fun (name, blob) ->
      Buffer.add_string b (u32 (String.length name));
      Buffer.add_string b name;
      Buffer.add_string b (u32 (String.length blob));
      Buffer.add_string b blob)
    programs;
  Crypto.Sha256.digest (Buffer.contents b)

let payload_messages t payload =
  let blocks =
    List.map
      (fun (seq, offset, chunk) -> encrypt_block t ~seq ~offset chunk)
      (split_payload payload)
  in
  blocks
  @ [
      Wire.Transfer_done
        { total_len = String.length payload; digest = Crypto.Sha256.digest payload };
    ]

(* ------------------------------------------------------------------ *)
(* Multiplexed server loop                                             *)
(* ------------------------------------------------------------------ *)

module Mux = struct
  let new_session = create

  type event =
    | Payload of { conn : string; payload : string }
    | Corrupt of { conn : string; why : string }

  type conn = {
    id : string;
    ep : Transport.endpoint;
    session : t;
    mutable buf : Bytes.t;
    mutable received : int;   (* bytes of plaintext accumulated *)
    mutable poisoned : bool;  (* corrupt transfer: discard until Transfer_done *)
  }

  type mux = { mutable conns : conn list }

  let create () = { conns = [] }

  let attach m ~id ~key ep =
    if List.exists (fun c -> c.id = id) m.conns then
      invalid_arg ("Session.Mux.attach: duplicate connection id " ^ id);
    m.conns <-
      m.conns
      @ [
          {
            id;
            ep;
            session = new_session ~key;
            buf = Bytes.create 0;
            received = 0;
            poisoned = false;
          };
        ]

  let connections m = List.map (fun c -> c.id) m.conns

  let reset c =
    c.buf <- Bytes.create 0;
    c.received <- 0

  let store c ~offset plain =
    let need = offset + String.length plain in
    if Bytes.length c.buf < need then begin
      let grown = Bytes.make (max need (2 * Bytes.length c.buf)) '\x00' in
      Bytes.blit c.buf 0 grown 0 (Bytes.length c.buf);
      c.buf <- grown
    end;
    Bytes.blit_string plain 0 c.buf offset (String.length plain);
    c.received <- c.received + String.length plain

  (* One protocol step for one connection: at most one message consumed.
     A transfer that fails authentication is reported once; the rest of
     it (through its Transfer_done) is discarded silently so one corrupt
     block yields one error, not an error per remaining message. *)
  let step c =
    match Transport.recv c.ep with
    | None -> None
    | Some (Wire.Code_block _) when c.poisoned -> None
    | Some (Wire.Transfer_done _) when c.poisoned ->
        c.poisoned <- false;
        None
    | Some (Wire.Code_block { seq; offset; ciphertext; tag }) -> begin
        match decrypt_block c.session ~seq ~offset ~ciphertext ~tag with
        | Some plain ->
            store c ~offset plain;
            None
        | None ->
            reset c;
            c.poisoned <- true;
            Some
              (Corrupt
                 {
                   conn = c.id;
                   why = Printf.sprintf "block %d failed authentication" seq;
                 })
      end
    | Some (Wire.Transfer_done { total_len; digest }) ->
        let finish =
          if c.received <> total_len then
            Corrupt { conn = c.id; why = "missing blocks" }
          else begin
            let payload = Bytes.sub_string c.buf 0 total_len in
            if Crypto.Sha256.digest payload <> digest then
              Corrupt { conn = c.id; why = "payload digest mismatch" }
            else Payload { conn = c.id; payload }
          end
        in
        reset c;
        Some finish
    | Some _ -> None (* handshake traffic is not ours to interpret *)

  let poll m = List.filter_map step m.conns

  let pending m = List.exists (fun c -> Transport.pending c.ep) m.conns

  let reply m ~id msg =
    match List.find_opt (fun c -> c.id = id) m.conns with
    | Some c -> Transport.send c.ep msg
    | None -> invalid_arg ("Session.Mux.reply: unknown connection " ^ id)
end
