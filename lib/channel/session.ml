type t = {
  aes : Crypto.Aes.key;
  mac_key : string;
  mutable xfer : int;  (* transfers completed on this session *)
}

let block_size = 4096

let create ~key =
  if String.length key <> 32 then invalid_arg "Session.create: need a 32-byte key";
  (* Independent cipher and MAC keys from one HKDF schedule. *)
  let prk = Crypto.Hkdf.extract ~salt:"engarde-session" key in
  {
    aes = Crypto.Aes.expand (Crypto.Hkdf.expand ~prk ~info:"block-cipher" 32);
    mac_key = Crypto.Hkdf.expand ~prk ~info:"block-mac" 32;
    xfer = 0;
  }

let u32 n = String.init 4 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

(* The per-transfer counter occupies the nonce's first eight bytes;
   AES-CTR's block counter lives in the last eight (positioned by
   [offset]). Distinct transfers therefore draw from disjoint keystream
   spaces — before this counter existed, a second transfer on the same
   session reused the keystream at identical offsets (a two-time pad). *)
let nonce_of_xfer xfer =
  String.init 16 (fun i -> if i < 8 then Char.chr ((xfer lsr (8 * (7 - i))) land 0xff) else '\x00')

let transfers t = t.xfer
let finish_transfer t = t.xfer <- t.xfer + 1

let mac t ~seq ~offset ct =
  Crypto.Hmac.sha256 ~key:t.mac_key (u32 t.xfer ^ u32 seq ^ u32 offset ^ ct)

let encrypt_block t ~seq ~offset plain =
  let ciphertext = Crypto.Aes.ctr_at ~key:t.aes ~nonce:(nonce_of_xfer t.xfer) ~offset plain in
  Wire.Code_block { seq; offset; ciphertext; tag = mac t ~seq ~offset ciphertext }

let decrypt_block t ~seq ~offset ~ciphertext ~tag =
  if
    not
      (Crypto.Hmac.verify ~key:t.mac_key
         ~msg:(u32 t.xfer ^ u32 seq ^ u32 offset ^ ciphertext)
         ~tag)
  then None
  else Some (Crypto.Aes.ctr_at ~key:t.aes ~nonce:(nonce_of_xfer t.xfer) ~offset ciphertext)

let split_payload payload =
  let len = String.length payload in
  let rec go seq offset acc =
    if offset >= len then List.rev acc
    else begin
      let n = min block_size (len - offset) in
      go (seq + 1) (offset + n) ((seq, offset, String.sub payload offset n) :: acc)
    end
  in
  go 0 0 []

(* Canonical digest of a negotiated policy set: order-sensitive,
   length-prefixed, domain-separated. Both sides compute it — the
   client over what it offers, the enclave over what arrived — and the
   enclave compares against the digest measured into it at build. *)
let policy_set_digest programs =
  let b = Buffer.create 256 in
  Buffer.add_string b "EGPSET1\x00";
  List.iter
    (fun (name, blob) ->
      Buffer.add_string b (u32 (String.length name));
      Buffer.add_string b name;
      Buffer.add_string b (u32 (String.length blob));
      Buffer.add_string b blob)
    programs;
  Crypto.Sha256.digest (Buffer.contents b)

let payload_messages t payload =
  let blocks =
    List.map
      (fun (seq, offset, chunk) -> encrypt_block t ~seq ~offset chunk)
      (split_payload payload)
  in
  let msgs =
    blocks
    @ [
        Wire.Transfer_done
          { total_len = String.length payload; digest = Crypto.Sha256.digest payload };
      ]
  in
  finish_transfer t;
  msgs

(* --- streaming client side ------------------------------------------ *)

(* A persistent record-layer writer for a connection: the first
   transfer runs in epoch 0; every later transfer opens with a
   Key_update ratchet, so each transfer gets fresh keys and a fresh
   record-number space. *)
type streamer = { writer : Record.writer; mutable sent : int }

let streamer ~key = { writer = Record.writer ~secret:(Record.traffic_secret ~key); sent = 0 }

let stream_messages ?meta s payload =
  let prologue = if s.sent = 0 then [] else [ Record.update_key s.writer ] in
  s.sent <- s.sent + 1;
  prologue @ Record.payload_records ?meta s.writer payload

(* ------------------------------------------------------------------ *)
(* Multiplexed server loop                                             *)
(* ------------------------------------------------------------------ *)

module Mux = struct
  let new_session = create

  type event =
    | Payload of { conn : string; payload : string }
    | Corrupt of { conn : string; why : string }
    | Peer of { conn : string; msg : Wire.t }

  type conn = {
    id : string;
    ep : Transport.endpoint;
    session : t;
    reader : Record.reader;   (* streaming transfers on the same key *)
    mutable buf : Bytes.t;
    mutable received : int;   (* bytes of plaintext accumulated *)
    mutable poisoned : bool;  (* corrupt transfer: discard until Transfer_done *)
  }

  (* Connections live in a hash table keyed by id — attach/reply are
     O(1) — while [order] keeps the attach order [poll] sweeps in, so
     the round-robin stays deterministic. *)
  type mux = {
    conns : (string, conn) Hashtbl.t;
    mutable order : string list;  (* attach order, reversed *)
    mutable stats_records : int;
    mutable stats_epoch_updates : int;
  }

  let create () = { conns = Hashtbl.create 16; order = []; stats_records = 0; stats_epoch_updates = 0 }

  let attach m ~id ~key ep =
    if Hashtbl.mem m.conns id then
      invalid_arg ("Session.Mux.attach: duplicate connection id " ^ id);
    Hashtbl.replace m.conns id
      {
        id;
        ep;
        session = new_session ~key;
        reader = Record.reader ~secret:(Record.traffic_secret ~key);
        buf = Bytes.create 0;
        received = 0;
        poisoned = false;
      };
    m.order <- id :: m.order

  let connections m = List.rev m.order
  let records_received m = m.stats_records
  let epoch_updates m = m.stats_epoch_updates

  let reset c =
    c.buf <- Bytes.create 0;
    c.received <- 0

  let store c ~offset plain =
    let need = offset + String.length plain in
    if Bytes.length c.buf < need then begin
      let grown = Bytes.make (max need (2 * Bytes.length c.buf)) '\x00' in
      Bytes.blit c.buf 0 grown 0 (Bytes.length c.buf);
      c.buf <- grown
    end;
    Bytes.blit_string plain 0 c.buf offset (String.length plain);
    c.received <- c.received + String.length plain

  (* Shared end-of-transfer check: both the legacy Transfer_done and
     the streaming Fin commit to the payload's length and digest. *)
  let finish c ~total_len ~digest =
    let ev =
      if c.received <> total_len then Corrupt { conn = c.id; why = "missing blocks" }
      else begin
        let payload = Bytes.sub_string c.buf 0 total_len in
        if Crypto.Sha256.digest payload <> digest then
          Corrupt { conn = c.id; why = "payload digest mismatch" }
        else Payload { conn = c.id; payload }
      end
    in
    reset c;
    ev

  (* One protocol step for one connection: at most one message consumed.
     A transfer that fails authentication is reported once; the rest of
     it (through its Transfer_done / Fin) is discarded silently so one
     corrupt block yields one error, not an error per remaining
     message. *)
  let step m c =
    match Transport.recv c.ep with
    | None -> None
    | Some (Wire.Code_block _) when c.poisoned -> None
    | Some (Wire.Transfer_done _) when c.poisoned ->
        c.poisoned <- false;
        finish_transfer c.session;
        None
    | Some (Wire.Code_block { seq; offset; ciphertext; tag }) -> begin
        match decrypt_block c.session ~seq ~offset ~ciphertext ~tag with
        | Some plain ->
            store c ~offset plain;
            None
        | None ->
            reset c;
            c.poisoned <- true;
            Some
              (Corrupt
                 {
                   conn = c.id;
                   why = Printf.sprintf "block %d failed authentication" seq;
                 })
      end
    | Some (Wire.Transfer_done { total_len; digest }) ->
        let ev = finish c ~total_len ~digest in
        finish_transfer c.session;
        Some ev
    | Some (Wire.Record { epoch; rn; ciphertext; tag }) -> begin
        m.stats_records <- m.stats_records + 1;
        let before = Record.epoch_updates c.reader in
        let ev = Record.read c.reader ~epoch ~rn ~ciphertext ~tag in
        m.stats_epoch_updates <- m.stats_epoch_updates + (Record.epoch_updates c.reader - before);
        match ev with
        | Record.Accept (Record.Stream { offset; data }) ->
            store c ~offset data;
            None
        | Record.Accept (Record.Fin { total_len; digest }) -> Some (finish c ~total_len ~digest)
        | Record.Accept Record.Key_update | Record.Accept (Record.Meta _) -> None
        | Record.Corrupt why ->
            reset c;
            Some (Corrupt { conn = c.id; why })
        | Record.Skip -> None
        | Record.Recovered ->
            reset c;
            None
      end
    | Some
        ((Wire.Peer_hello _ | Wire.Peer_quote _ | Wire.Verdict_push _ | Wire.Verdict_pull _
         | Wire.Checkpoint_gossip _) as msg) ->
        (* Fleet peer traffic: authenticated by quotes at the fleet
           layer, not by this connection's session keys — surface it
           verbatim. *)
        Some (Peer { conn = c.id; msg })
    | Some _ -> None (* handshake traffic is not ours to interpret *)

  let poll m =
    List.filter_map (fun id -> step m (Hashtbl.find m.conns id)) (connections m)

  let pending m = Hashtbl.fold (fun _ c acc -> acc || Transport.pending c.ep) m.conns false

  let reply m ~id msg =
    match Hashtbl.find_opt m.conns id with
    | Some c -> Transport.send c.ep msg
    | None -> invalid_arg ("Session.Mux.reply: unknown connection " ^ id)
end
