type t = {
  device_pub : Crypto.Rsa.public;
  expected_measurement : string;
  payload : string;
  programs : (string * string) list;
  session_key : string;
  challenge_bytes : string;
  mutable session : Session.t option;
}

type failure =
  | Bad_quote
  | Wrong_measurement of string
  | Bad_enclave_key
  | Protocol of string

let failure_to_string = function
  | Bad_quote -> "attestation quote does not verify under the device key"
  | Wrong_measurement hex -> "enclave measurement mismatch: " ^ hex
  | Bad_enclave_key -> "quote does not bind the enclave's public key"
  | Protocol why -> "protocol error: " ^ why

let create ?(programs = []) ~device_pub ~expected_measurement ~seed ~payload () =
  let drbg = Crypto.Drbg.create ~personalization:"engarde-client" seed in
  {
    device_pub;
    expected_measurement;
    payload;
    programs;
    session_key = Crypto.Drbg.generate drbg 32;
    challenge_bytes = Crypto.Drbg.generate drbg 16;
    session = None;
  }

let offered_digest t =
  if t.programs = [] then None else Some (Session.policy_set_digest t.programs)

let policy_offer t =
  if t.programs = [] then None else Some (Wire.Policy_offer { programs = t.programs })

let challenge t = Wire.Client_hello { challenge = t.challenge_bytes }

let handle_quote t = function
  | Wire.Quote_response { quote; enclave_pub } -> begin
      match Sgx.Quote.of_bytes quote with
      | None -> Error (Protocol "unparseable quote")
      | Some q ->
          if not (Sgx.Quote.verify t.device_pub q) then Error Bad_quote
          else if q.Sgx.Quote.measurement <> t.expected_measurement then
            Error (Wrong_measurement (Crypto.Sha256.hex q.Sgx.Quote.measurement))
          else if q.Sgx.Quote.report_data <> Crypto.Sha256.digest enclave_pub then
            (* The binding of key to enclave is rooted in the quote. *)
            Error Bad_enclave_key
          else begin
            match Crypto.Rsa.pub_of_bytes enclave_pub with
            | None -> Error (Protocol "unparseable enclave public key")
            | Some pub ->
                t.session <- Some (Session.create ~key:t.session_key);
                Ok (Wire.Wrapped_key { wrapped = Crypto.Rsa.encrypt pub t.session_key })
          end
    end
  | other -> Error (Protocol ("expected quote-response, got " ^ Wire.describe other))

let code_messages t =
  match t.session with
  | None -> invalid_arg "Client.code_messages before handle_quote"
  | Some session -> Session.payload_messages session t.payload

let read_verdict = function
  | Wire.Verdict { accepted; detail } -> Ok (accepted, detail)
  | other -> Error (Protocol ("expected verdict, got " ^ Wire.describe other))
