type t = {
  device_pub : Crypto.Rsa.public;
  expected_measurement : string;
  payload : string;
  programs : (string * string) list;
  session_key : string;
  challenge_bytes : string;
  mutable session : Session.t option;
}

type failure =
  | Bad_quote
  | Wrong_measurement of string
  | Bad_enclave_key
  | Protocol of string

let failure_to_string = function
  | Bad_quote -> "attestation quote does not verify under the device key"
  | Wrong_measurement hex -> "enclave measurement mismatch: " ^ hex
  | Bad_enclave_key -> "quote does not bind the enclave's public key"
  | Protocol why -> "protocol error: " ^ why

let create ?(programs = []) ~device_pub ~expected_measurement ~seed ~payload () =
  let drbg = Crypto.Drbg.create ~personalization:"engarde-client" seed in
  {
    device_pub;
    expected_measurement;
    payload;
    programs;
    session_key = Crypto.Drbg.generate drbg 32;
    challenge_bytes = Crypto.Drbg.generate drbg 16;
    session = None;
  }

let offered_digest t =
  if t.programs = [] then None else Some (Session.policy_set_digest t.programs)

let policy_offer t =
  if t.programs = [] then None else Some (Wire.Policy_offer { programs = t.programs })

let challenge t = Wire.Client_hello { challenge = t.challenge_bytes }

let handle_quote t = function
  | Wire.Quote_response { quote; enclave_pub } -> begin
      match Sgx.Quote.of_bytes quote with
      | None -> Error (Protocol "unparseable quote")
      | Some q ->
          if not (Sgx.Quote.verify t.device_pub q) then Error Bad_quote
          else if q.Sgx.Quote.measurement <> t.expected_measurement then
            Error (Wrong_measurement (Crypto.Sha256.hex q.Sgx.Quote.measurement))
          else if q.Sgx.Quote.report_data <> Crypto.Sha256.digest enclave_pub then
            (* The binding of key to enclave is rooted in the quote. *)
            Error Bad_enclave_key
          else begin
            match Crypto.Rsa.pub_of_bytes enclave_pub with
            | None -> Error (Protocol "unparseable enclave public key")
            | Some pub ->
                t.session <- Some (Session.create ~key:t.session_key);
                Ok (Wire.Wrapped_key { wrapped = Crypto.Rsa.encrypt pub t.session_key })
          end
    end
  | other -> Error (Protocol ("expected quote-response, got " ^ Wire.describe other))

let code_messages t =
  match t.session with
  | None -> invalid_arg "Client.code_messages before handle_quote"
  | Some session -> Session.payload_messages session t.payload

let read_verdict = function
  | Wire.Verdict { accepted; detail } -> Ok (accepted, detail)
  | other -> Error (Protocol ("expected verdict, got " ^ Wire.describe other))

(* --- streaming transfers -------------------------------------------- *)

(* Cold path: record-layer traffic keys hang off the session key the
   handshake just wrapped, so streaming requires the same attestation
   the legacy blocks did. *)
let stream_seq ?meta t =
  if t.session = None then invalid_arg "Client.stream_seq before handle_quote";
  let w = Record.writer ~secret:(Record.traffic_secret ~key:t.session_key) in
  Record.payload_record_seq ?meta w t.payload

let stream_messages ?meta t = List.of_seq (stream_seq ?meta t)

(* What the client stashes alongside the opaque ticket blob: the
   resumption secret it can later prove possession of. *)
let resumption t = if t.session = None then None else Some (Record.resumption_secret ~key:t.session_key)

let stash_ticket t = function
  | Wire.Ticket { blob } -> Option.map (fun secret -> (blob, secret)) (resumption t)
  | _ -> None

(* --- 0-RTT resumption ----------------------------------------------- *)

let resume_opener t ~ticket = Wire.Resume { ticket; nonce = t.challenge_bytes }

let zero_rtt_seq ?meta t ~resumption =
  let secret = Record.zero_rtt_secret ~resumption ~nonce:t.challenge_bytes in
  let w = Record.writer ~secret in
  Record.payload_record_seq ?meta w t.payload

let zero_rtt_messages ?meta t ~resumption = List.of_seq (zero_rtt_seq ?meta t ~resumption)

let check_resume_accept t ~resumption = function
  | Wire.Resume_accept { confirm } ->
      Record.check_confirm ~resumption ~nonce:t.challenge_bytes ~tag:confirm
  | _ -> false

(* After a successful 0-RTT run both ends hold the 0-RTT traffic
   secret; the next ticket's resumption secret ratchets from it. *)
let resumed_secret t ~resumption =
  Record.resumption_secret ~key:(Record.zero_rtt_secret ~resumption ~nonce:t.challenge_bytes)
