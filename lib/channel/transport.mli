(** Bidirectional message transport. The reproduction runs client and
    enclave in one process, so the default transport is a loopback pair
    of FIFO queues; a [tamper] hook lets tests model an attacker on the
    untrusted network path between the client and the enclave (the cloud
    provider's network — the paper's threat model lets it observe and
    modify everything outside the enclave). *)

type endpoint

val send : endpoint -> Wire.t -> unit
val recv : endpoint -> Wire.t option
(** [None] when the peer has sent nothing (this transport never
    blocks). *)

val pending : endpoint -> bool
(** Whether a [recv] would return a message (non-destructive probe). *)

val pending_bytes : endpoint -> int
(** Serialized size of everything waiting in the inbox — the streaming
    pipeline's bytes-in-flight gauge. *)

val pair : ?tamper:(Wire.t -> Wire.t) -> unit -> endpoint * endpoint
(** [pair ()] returns (client_end, enclave_end). [tamper] is applied to
    every message in both directions (default: identity). Messages are
    re-serialized through {!Wire.to_bytes}, so a tamper function sees
    exactly what the wire carries. *)

val drain : endpoint -> Wire.t list
(** All queued incoming messages, in order. *)
