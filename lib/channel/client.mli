(** The client-side driver of the provisioning protocol.

    The client trusts only: the SGX device attestation key (published by
    the manufacturer), and the expected measurement of an enclave
    freshly provisioned with EnGarde plus the agreed policy modules
    (both provider and client can recompute it, since EnGarde's code is
    public — Section 3's mutual-trust argument). Everything else —
    network, host OS, hypervisor, the provider — is adversarial. *)

type t

type failure =
  | Bad_quote              (** signature invalid under the device key *)
  | Wrong_measurement of string  (** hex of the measurement we saw *)
  | Bad_enclave_key        (** report data does not bind the RSA key *)
  | Protocol of string

val failure_to_string : failure -> string

val create :
  ?programs:(string * string) list ->
  device_pub:Crypto.Rsa.public ->
  expected_measurement:string ->
  seed:string ->
  payload:string ->
  unit ->
  t
(** [payload] is the ELF executable to ship. [seed] drives the client's
    session-key generation deterministically. [programs] is the
    negotiated policy-program set ([(name, canonical blob)] pairs) the
    client will offer before streaming code; empty means no
    negotiation step. *)

val offered_digest : t -> string option
(** {!Session.policy_set_digest} of [programs]; [None] when the client
    negotiates nothing. *)

val policy_offer : t -> Wire.t option
(** The [Policy_offer] message, when there is a program set to offer. *)

val challenge : t -> Wire.t
(** Step 1: the attestation challenge. *)

val handle_quote : t -> Wire.t -> (Wire.t, failure) result
(** Step 2: verify the quote; on success returns the [Wrapped_key]
    message carrying the AES-256 session key under the enclave's RSA
    public key. *)

val code_messages : t -> Wire.t list
(** Step 3: the encrypted [Code_block]s followed by [Transfer_done]. *)

val read_verdict : Wire.t -> (bool * string, failure) result
