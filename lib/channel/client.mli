(** The client-side driver of the provisioning protocol.

    The client trusts only: the SGX device attestation key (published by
    the manufacturer), and the expected measurement of an enclave
    freshly provisioned with EnGarde plus the agreed policy modules
    (both provider and client can recompute it, since EnGarde's code is
    public — Section 3's mutual-trust argument). Everything else —
    network, host OS, hypervisor, the provider — is adversarial. *)

type t

type failure =
  | Bad_quote              (** signature invalid under the device key *)
  | Wrong_measurement of string  (** hex of the measurement we saw *)
  | Bad_enclave_key        (** report data does not bind the RSA key *)
  | Protocol of string

val failure_to_string : failure -> string

val create :
  ?programs:(string * string) list ->
  device_pub:Crypto.Rsa.public ->
  expected_measurement:string ->
  seed:string ->
  payload:string ->
  unit ->
  t
(** [payload] is the ELF executable to ship. [seed] drives the client's
    session-key generation deterministically. [programs] is the
    negotiated policy-program set ([(name, canonical blob)] pairs) the
    client will offer before streaming code; empty means no
    negotiation step. *)

val offered_digest : t -> string option
(** {!Session.policy_set_digest} of [programs]; [None] when the client
    negotiates nothing. *)

val policy_offer : t -> Wire.t option
(** The [Policy_offer] message, when there is a program set to offer. *)

val challenge : t -> Wire.t
(** Step 1: the attestation challenge. *)

val handle_quote : t -> Wire.t -> (Wire.t, failure) result
(** Step 2: verify the quote; on success returns the [Wrapped_key]
    message carrying the AES-256 session key under the enclave's RSA
    public key. *)

val code_messages : t -> Wire.t list
(** Step 3: the encrypted [Code_block]s followed by [Transfer_done]. *)

val read_verdict : Wire.t -> (bool * string, failure) result

(** {1 Streaming transfers and 0-RTT resumption} *)

val stream_messages : ?meta:Record.meta -> t -> Wire.t list
(** Step 3, streaming flavor: the payload as EGREC1 [Record]s (traffic
    keys derived from the wrapped session key). Requires a successful
    {!handle_quote} first. *)

val stream_seq : ?meta:Record.meta -> t -> Wire.t Seq.t
(** Lazy one-shot variant of {!stream_messages} (see
    {!Record.payload_record_seq}). *)

val resumption : t -> string option
(** The resumption secret this session's ticket will bind; [None]
    before the handshake completes. *)

val stash_ticket : t -> Wire.t -> (string * string) option
(** From an inspector's [Ticket] message, the [(blob, resumption
    secret)] pair the client stores for later 0-RTT use. *)

val resume_opener : t -> ticket:string -> Wire.t
(** The [Resume] message replacing [Client_hello]: the stored ticket
    plus a fresh nonce salting the 0-RTT traffic keys. *)

val zero_rtt_messages : ?meta:Record.meta -> t -> resumption:string -> Wire.t list
(** The payload streamed immediately after {!resume_opener}, under keys
    derived from the stashed resumption secret — no RSA handshake. *)

val zero_rtt_seq : ?meta:Record.meta -> t -> resumption:string -> Wire.t Seq.t
(** Lazy one-shot variant of {!zero_rtt_messages}. *)

val check_resume_accept : t -> resumption:string -> Wire.t -> bool
(** Whether a [Resume_accept] proves the inspector unsealed our
    ticket. *)

val resumed_secret : t -> resumption:string -> string
(** The next resumption secret after a successful 0-RTT run (ratcheted
    from the 0-RTT traffic secret both ends hold). *)
