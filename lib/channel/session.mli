(** Block encryption for the code transfer: AES-256-CTR keyed by the
    client's session key, one keystream positioned by absolute stream
    offset (so blocks can be decrypted in arrival order), with an
    HMAC-SHA256 tag over the block header and ciphertext. The paper's
    enclave receives "the content in encrypted blocks, which EnGarde's
    crypto library decrypts to form an in-memory executable
    representation".

    Cipher and MAC keys come from one {!Crypto.Hkdf} schedule, and a
    per-transfer counter is mixed into the CTR nonce (and bound by the
    MAC), so consecutive transfers on one session draw from disjoint
    keystreams. New code should prefer the streaming record layer
    ({!Record}); this legacy framing is kept for the paper-faithful
    monolithic flow (the [--legacy-channel] knob). *)

type t

val create : key:string -> t
(** [key] is the 32-byte AES-256 session key. *)

val block_size : int
(** One page, as EnGarde works at page granularity. *)

val transfers : t -> int
(** How many transfers have completed on this session — the counter
    mixed into the CTR nonce. *)

val finish_transfer : t -> unit
(** Advance the transfer counter. [payload_messages] and the [Mux]
    call this at each transfer boundary; both ends must agree. *)

val encrypt_block : t -> seq:int -> offset:int -> string -> Wire.t
(** Build an authenticated [Code_block] message. *)

val decrypt_block :
  t -> seq:int -> offset:int -> ciphertext:string -> tag:string -> string option
(** [None] when the tag does not verify (tampered or wrong key). *)

val split_payload : string -> (int * int * string) list
(** [(seq, offset, chunk)] page-sized pieces covering the payload. *)

val policy_set_digest : (string * string) list -> string
(** Canonical 32-byte digest of a negotiated policy-program set
    ([(name, blob)] pairs, order-sensitive). The provider measures it
    into the enclave; the enclave recomputes it over the client's
    {!Wire.Policy_offer} and accepts only on a match. *)

val payload_messages : t -> string -> Wire.t list
(** The full client-side transfer: every authenticated [Code_block]
    followed by the [Transfer_done] trailer. Advances the transfer
    counter. *)

(** {1 Streaming transfers} *)

type streamer
(** A persistent {!Record} writer for one connection: the first
    transfer runs in epoch 0, every later transfer opens with a
    [Key_update] ratchet. *)

val streamer : key:string -> streamer

val stream_messages : ?meta:Record.meta -> streamer -> string -> Wire.t list
(** One streamed transfer as wire messages (ratchet prologue when this
    is not the first transfer, then {!Record.payload_records}). *)

(** Multiplexed server loop: the front door of the inspection service.

    One [mux] watches many client connections (one session key each),
    round-robin — [poll] consumes at most one wire message per
    connection per call, so a client streaming a large executable cannot
    starve the others. Completed, digest-verified payloads surface as
    [Payload] events for the service's job queue; authentication
    failures surface as [Corrupt] (the connection's reassembly state is
    dropped, the connection itself stays usable). Connections are
    persistent: after a [Transfer_done] the client may stream another
    payload on the same session. Each connection accepts both legacy
    [Code_block] transfers and streaming [Record] transfers on the same
    key. *)
module Mux : sig
  type event =
    | Payload of { conn : string; payload : string }
    | Corrupt of { conn : string; why : string }
    | Peer of { conn : string; msg : Wire.t }
        (** a fleet peer-protocol message ([Peer_hello], [Peer_quote],
            [Verdict_push], [Verdict_pull], [Checkpoint_gossip]) —
            authenticated by SGX quotes at the fleet layer rather than
            by this connection's session keys, so it is surfaced
            verbatim for the fleet node to judge *)

  type mux

  val create : unit -> mux

  val attach : mux -> id:string -> key:string -> Transport.endpoint -> unit
  (** [key] is the connection's 32-byte session key (agreed out of band
      or via the attestation handshake). Raises [Invalid_argument] on a
      duplicate [id]. *)

  val connections : mux -> string list
  (** Ids in attach order — the round-robin order [poll] uses. *)

  val records_received : mux -> int
  (** Streaming records consumed across all connections. *)

  val epoch_updates : mux -> int
  (** Key-epoch ratchets observed across all connections. *)

  val poll : mux -> event list
  (** One round-robin sweep: at most one message consumed per
      connection. *)

  val pending : mux -> bool
  (** Whether any connection has unconsumed incoming traffic. *)

  val reply : mux -> id:string -> Wire.t -> unit
  (** Send a message (typically a [Verdict]) back to one client. *)
end
