(** Fleet coordinator: routing, pumping, failure handling.

    The coordinator owns N {!Node}s, wires every pair with a loopback
    transport, and dispatches inspection jobs:

    + {e rendezvous routing}: jobs route by highest-random-weight hash
      of their cache content address, so resubmissions of the same
      binary land on the node whose cache is warm — without a routing
      table that would need rebalancing when membership changes;
    + {e work stealing}: when the preferred node's queue is deeper than
      the least-loaded live node's by more than [steal_margin], the job
      spills to the least-loaded node, which immediately sends the
      preferred node a [Verdict_pull] so a warm verdict still arrives
      before (or instead of) a redundant inspection;
    + {e quarantine}: a node that stops answering while holding work
      (no completions for [quarantine_after] consecutive rounds) is
      quarantined — every peer drops its future pushes, routing skips
      it, and its in-flight jobs are resubmitted to the survivors. A
      node that presents a forged quote is quarantined by the peers
      themselves at verification time.

    The coordinator is untrusted in the EnGarde sense: it moves opaque
    jobs and pumps ticks. All trust decisions (quote checks, inclusion
    proofs) happen inside the nodes. *)

type config = {
  nodes : int;
  seed : string;  (** deterministic root for device keys and nonces *)
  node_config : Service.Scheduler.config;
      (** per-node scheduler template; [audit] is forced on *)
  steal_margin : int;  (** queue-depth gap that triggers spillover *)
  quarantine_after : int;
      (** pump rounds a node may hold work without completing anything
          before it is declared unresponsive *)
}

val default_config : config
(** 2 nodes, audit on, [steal_margin = 8], [quarantine_after = 2000]. *)

type t

val create : config -> t
(** Build the manifest, provision device keys, create and fully
    interconnect the nodes, and run the mutual-attestation handshake to
    completion. Raises if any pair fails to attest. *)

val manifest : t -> Manifest.t
val node : t -> int -> Node.t
val nodes : t -> int

val route : t -> Service.Scheduler.job -> int
(** The rendezvous choice (after spillover) among live nodes. *)

val submit : t -> ?node:int -> Service.Scheduler.job -> (int * int, string) result
(** Submit a job — to [node] if forced (tests, cache-warming probes),
    else to {!route}'s choice. Returns (node, sequence number on that
    node) or the admission rejection. *)

val pump : t -> int
(** One round: pump every live node, track progress, quarantine
    unresponsive nodes and resubmit their in-flight jobs. Returns the
    number of completions collected this round. *)

val run_until_idle : ?max_rounds:int -> t -> (int * Service.Scheduler.completion) list
(** Pump until no live node holds work and no peer traffic is pending,
    then return (and clear) all accumulated (node, completion) pairs in
    collection order. Raises [Failure] if [max_rounds] is exhausted. *)

val completions : t -> (int * Service.Scheduler.completion) list
(** Accumulated (node, completion) pairs since the last drain, oldest
    first; clears the buffer. *)

val quarantine : t -> int -> why:string -> unit
(** Quarantine a node by hand: peers drop it, routing skips it, its
    in-flight jobs are resubmitted to survivors. *)

val quarantined : t -> (int * string) list
(** Quarantined nodes and why, oldest first. *)

val fail_node : t -> int -> unit
(** Chaos hook: the node stops being pumped (as if its process hung).
    The coordinator notices via the [quarantine_after] progress rule. *)

type node_stats = {
  completed : int;
  cross_hits : int;  (** cache hits served from imported verdicts *)
  imported : int;
  pipeline_runs : int;  (** real pipeline executions on this node *)
}

val stats : t -> node_stats array
val report : t -> int -> string
(** Node [i]'s metrics registry rendered (includes fleet_* counters). *)
