(** Fleet group manifest: MAGE-derived mutual identities.

    Every inspector node in a fleet runs the same judging pipeline (so
    verdicts are node-independent), but each node needs its own
    attestable identity for the peer protocol — a quote from node 2
    must not be replayable as node 5. The manifest builds those
    identities the MAGE way, with no third party publishing final
    measurements:

    + each node's pre-aux build log measures the shared service
      measurement (tag ["EGFLEET1"]) and its own index (["EGNODE1\x00"]),
      then stops — its intermediate hash state is the node's
      {e snapshot};
    + all snapshots concatenate into one auxiliary record
      ({!Sgx.Mage.aux_of_snapshots});
    + every node folds that same record into its log as the final
      measured item (tag [EGMAGE1]) and finalizes.

    Each identity therefore commits to every member's snapshot, and
    from its own aux record a node {e derives} any peer's expected
    identity ({!derive_peer}) — resume the peer's snapshot, fold the
    aux record it already holds, finalize. Mutual attestation reduces
    to an equality check against a value each side computes alone.

    The fleet node identity is deliberately distinct from the per-job
    judging measurement: job verdicts, findings and audit leaves stay
    bit-identical across nodes (and to a standalone scheduler), while
    peer quotes and checkpoint signatures carry the node identity. *)

type t

val build : nodes:int -> service_measurement:string -> t
(** Snapshot all [nodes] members, assemble the aux record, derive every
    identity. [service_measurement] is the shared judging enclave's
    measurement (32 bytes); [nodes] must be positive. *)

val members : t -> int
val aux : t -> string
(** The EGMAGE1 auxiliary record every member measured. *)

val service_measurement : t -> string

val pre_aux_snapshot : t -> int -> string
(** Node [i]'s pre-aux measurement-log snapshot (raises on bad index). *)

val identity : t -> int -> string
(** Node [i]'s final fleet identity (raises on bad index). *)

val derive_peer : t -> peer:int -> string
(** What any member computes for [peer]'s expected identity using only
    the aux record folded into its own measurement — the MAGE
    derivation, re-run from the serialized record rather than read from
    the [identities] table, so a corrupted record cannot go unnoticed.
    Raises [Invalid_argument] on a malformed record or bad index. *)

(** {1 Peer-protocol quote bindings}

    The 32-byte [report_data] committed inside peer quotes. Both sides
    compute these independently; all inputs are fixed-length (cache
    keys and findings digests are SHA-256 outputs), so concatenation is
    unambiguous. *)

val hello_binding : node:int -> nonce:string -> string
(** Binds a handshake response: the responder's index and the
    challenger's nonce, so a [Peer_quote] can be neither replayed under
    a fresh nonce nor re-attributed to another node. *)

val verdict_binding : key:string -> findings_digest:string -> string
(** Binds a pushed verdict: its cache content address and its findings
    digest, so the quote vouches for exactly this verdict's substance. *)
