module Scheduler = Service.Scheduler

type config = {
  nodes : int;
  seed : string;
  node_config : Scheduler.config;
  steal_margin : int;
  quarantine_after : int;
}

let default_config =
  {
    nodes = 2;
    seed = "engarde-fleet";
    node_config = { Scheduler.default_config with Scheduler.audit = true };
    steal_margin = 8;
    quarantine_after = 2000;
  }

type slot = {
  node : Node.t;
  mutable failed : bool;  (* chaos: no longer pumped *)
  mutable is_quarantined : bool;
  mutable stuck : int;  (* rounds holding work without a completion *)
  mutable inflight : (int * Scheduler.job) list;  (* (seq, job), newest first *)
  mutable completed : int;
  mutable attempts : int;  (* pipeline executions, summed off completions *)
}

type t = {
  cfg : config;
  fleet_manifest : Manifest.t;
  slots : slot array;
  mutable done_jobs : (int * Scheduler.completion) list;  (* newest first *)
  mutable quarantine_log : (int * string) list;  (* newest first *)
}

let u32le v = String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

let manifest t = t.fleet_manifest
let node t i = t.slots.(i).node
let nodes t = Array.length t.slots

let live t i =
  let s = t.slots.(i) in
  (not s.is_quarantined) && not s.failed

let create cfg =
  if cfg.nodes <= 0 then invalid_arg "Fleet.Coordinator.create: nodes must be positive";
  let node_config = { cfg.node_config with Scheduler.audit = true } in
  let service_measurement =
    Engarde.Provision.expected_measurement node_config.Scheduler.provision
  in
  let fleet_manifest = Manifest.build ~nodes:cfg.nodes ~service_measurement in
  (* One attestation device per node, deterministically provisioned
     from the fleet seed; the publics are pinned fleet-wide (the
     hardware trust root MAGE does not remove). *)
  let devices =
    Array.init cfg.nodes (fun i ->
        Sgx.Quote.device_create ~seed:(Printf.sprintf "%s/device-%d" cfg.seed i))
  in
  let peer_publics = Array.map Sgx.Quote.device_public devices in
  let make_node i =
    Node.create ~manifest:fleet_manifest ~id:i ~device:devices.(i) ~peer_publics
      ~nonce_seed:(Printf.sprintf "%s/nonce-%d" cfg.seed i)
      node_config
  in
  let slots =
    Array.init cfg.nodes (fun i ->
        {
          node = make_node i;
          failed = false;
          is_quarantined = false;
          stuck = 0;
          inflight = [];
          completed = 0;
          attempts = 0;
        })
  in
  let t = { cfg; fleet_manifest; slots; done_jobs = []; quarantine_log = [] } in
  Array.iteri
    (fun i si -> Array.iteri (fun j sj -> if i < j then Node.connect si.node sj.node) slots |> ignore;
      ignore i)
    slots;
  Array.iter (fun s -> Node.begin_handshake s.node) slots;
  (* Drive the handshake to completion: each round moves every pair one
     message forward (hello in, quote out; quote in, attested). *)
  for _ = 1 to 4 + cfg.nodes do
    Array.iter (fun s -> ignore (Node.pump s.node)) slots
  done;
  Array.iteri
    (fun i si ->
      Array.iteri
        (fun j _ ->
          if i <> j && not (Node.attested si.node j) then
            failwith (Printf.sprintf "Fleet.Coordinator.create: node %d failed to attest node %d" i j))
        slots)
    slots;
  t

(* Highest-random-weight (rendezvous) hash over the live nodes: every
   coordinator computes the same winner for a key without shared state,
   and removing a node only remaps the keys that pointed at it. *)
let rendezvous t key =
  let best = ref (-1) and best_score = ref "" in
  Array.iteri
    (fun i _ ->
      if live t i then begin
        let score = Crypto.Sha256.digest ("EGFLEET-ROUTE\x00" ^ key ^ u32le i) in
        if !best < 0 || String.compare score !best_score > 0 then begin
          best := i;
          best_score := score
        end
      end)
    t.slots;
  if !best < 0 then failwith "Fleet.Coordinator: no live nodes";
  !best

let load t i = (Scheduler.queue_stats (Node.scheduler t.slots.(i).node)).Service.Queue.depth

let route t job =
  let key = Scheduler.job_key (Node.scheduler t.slots.(0).node) job in
  let preferred = rendezvous t key in
  (* Work stealing: spill to the least-loaded live node when the warm
     node is backed up well past it. *)
  let least = ref preferred in
  Array.iteri (fun i _ -> if live t i && load t i < load t !least then least := i) t.slots;
  if load t preferred - load t !least > t.cfg.steal_margin then !least else preferred

let submit t ?node:forced job =
  let target = match forced with Some n -> n | None -> route t job in
  let slot = t.slots.(target) in
  let sched = Node.scheduler slot.node in
  let key = Scheduler.job_key sched job in
  match Scheduler.submit sched job with
  | Error why -> Error why
  | Ok seq ->
      slot.inflight <- (seq, job) :: slot.inflight;
      (* A spilled (or forced) job that rendezvous-routes elsewhere:
         ask the warm node for its verdict so the cache can answer
         before the pipeline does. *)
      let preferred = rendezvous t key in
      if preferred <> target && live t preferred && Node.attested slot.node preferred then
        Node.request_pull slot.node ~peer:preferred ~key;
      Ok (target, seq)

let quarantine t i ~why =
  let slot = t.slots.(i) in
  if not slot.is_quarantined then begin
    slot.is_quarantined <- true;
    t.quarantine_log <- (i, why) :: t.quarantine_log;
    Array.iteri
      (fun j s -> if j <> i then Node.quarantine_peer s.node i)
      t.slots;
    (* Survivors take over the quarantined node's unfinished work. Its
       own verdicts stay only where peers already verified them. *)
    let orphans = List.rev_map snd slot.inflight in
    slot.inflight <- [];
    List.iter (fun job -> ignore (submit t job)) orphans
  end

let quarantined t = List.rev t.quarantine_log

let fail_node t i = t.slots.(i).failed <- true

let pump t =
  let collected = ref 0 in
  Array.iteri
    (fun i slot ->
      if not slot.is_quarantined then begin
        let comps = if slot.failed then [] else Node.pump slot.node in
        if comps <> [] then begin
          slot.stuck <- 0;
          List.iter
            (fun (c : Scheduler.completion) ->
              slot.inflight <-
                List.filter (fun (seq, _) -> seq <> c.Scheduler.seq) slot.inflight;
              slot.completed <- slot.completed + 1;
              slot.attempts <- slot.attempts + c.Scheduler.attempts;
              t.done_jobs <- (i, c) :: t.done_jobs;
              incr collected)
            comps
        end
        else if slot.inflight <> [] then begin
          slot.stuck <- slot.stuck + 1;
          if slot.stuck > t.cfg.quarantine_after then
            quarantine t i ~why:"unresponsive: work in flight but no completions"
        end
      end)
    t.slots;
  !collected

let completions t =
  let out = List.rev t.done_jobs in
  t.done_jobs <- [];
  out

let idle t =
  Array.for_all
    (fun slot ->
      slot.is_quarantined
      || (slot.inflight = []
         && (not (Scheduler.busy (Node.scheduler slot.node)))
         && not (Channel.Session.Mux.pending (Node.mux slot.node))))
    t.slots

let run_until_idle ?(max_rounds = 2_000_000) t =
  let rounds = ref 0 in
  (* Two quiet rounds: one for straggler peer messages to drain, one to
     confirm nothing new appeared. *)
  let quiet = ref 0 in
  while !quiet < 2 && !rounds < max_rounds do
    let got = pump t in
    if got = 0 && idle t then incr quiet else quiet := 0;
    incr rounds
  done;
  if !quiet < 2 then failwith "Fleet.Coordinator.run_until_idle: round budget exhausted";
  completions t

type node_stats = {
  completed : int;
  cross_hits : int;
  imported : int;
  pipeline_runs : int;
}

let stats t =
  Array.map
    (fun (slot : slot) ->
      {
        completed = slot.completed;
        cross_hits = Node.cross_hits slot.node;
        imported = Node.imported_count slot.node;
        pipeline_runs = slot.attempts;
      })
    t.slots

let report t i = Scheduler.report (Node.scheduler t.slots.(i).node)
