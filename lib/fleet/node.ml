module Wire = Channel.Wire
module Mux = Channel.Session.Mux
module Scheduler = Service.Scheduler
module Metrics = Service.Metrics

type evidence = {
  peer : int;
  quote : Sgx.Quote.t;
  checkpoint : Audit.Log.checkpoint;
  index : int;
  proof : string list;
}

type peer_state = {
  mutable connected : bool;
  mutable sent_nonce : string option;  (* outstanding handshake challenge *)
  mutable is_attested : bool;
  mutable is_quarantined : bool;
  mutable last_ckpt_size : int;  (* gossip monotonicity floor *)
}

type t = {
  manifest : Manifest.t;
  node_id : int;
  device : Sgx.Quote.device;
  peer_publics : Crypto.Rsa.public array;
  identity : string;
  sched : Scheduler.t;
  mux : Mux.mux;
  peers : (int, peer_state) Hashtbl.t;
  seen_hellos : (int * string, unit) Hashtbl.t;  (* replay filter *)
  (* Verdicts this node answered itself (hence logged): the only ones
     it may push, since only they have inclusion proofs in its log. *)
  verdicts : (string, Service.Cache.verdict) Hashtbl.t;
  leaf_index : (string, int) Hashtbl.t;  (* key -> first leaf index *)
  mutable scanned : int;  (* log prefix already indexed *)
  imported : (string, evidence) Hashtbl.t;
  mutable cross : int;
  mutable rejects : (int * Metrics.fleet_reject) list;
  nonce_seed : string;
  mutable nonce_counter : int;
}

let u64le v = String.init 8 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

let create ~manifest ~id ~device ~peer_publics ~nonce_seed (cfg : Scheduler.config) =
  if not cfg.Scheduler.audit then
    invalid_arg "Fleet.Node.create: audit must be enabled (verdict exchange needs the log)";
  if Array.length peer_publics <> Manifest.members manifest then
    invalid_arg "Fleet.Node.create: one pinned device key per fleet member";
  if id < 0 || id >= Manifest.members manifest then invalid_arg "Fleet.Node.create: bad id";
  {
    manifest;
    node_id = id;
    device;
    peer_publics;
    identity = Manifest.identity manifest id;
    sched = Scheduler.create cfg;
    mux = Mux.create ();
    peers = Hashtbl.create 8;
    seen_hellos = Hashtbl.create 16;
    verdicts = Hashtbl.create 64;
    leaf_index = Hashtbl.create 64;
    scanned = 0;
    imported = Hashtbl.create 16;
    cross = 0;
    rejects = [];
    nonce_seed;
    nonce_counter = 0;
  }

let id t = t.node_id
let identity t = t.identity
let scheduler t = t.sched
let mux t = t.mux

let get_peer t peer =
  match Hashtbl.find_opt t.peers peer with
  | Some ps -> ps
  | None ->
      let ps =
        {
          connected = false;
          sent_nonce = None;
          is_attested = false;
          is_quarantined = false;
          last_ckpt_size = 0;
        }
      in
      Hashtbl.replace t.peers peer ps;
      ps

let conn_id peer = "peer-" ^ string_of_int peer

let peer_of_conn conn =
  let prefix = "peer-" in
  let plen = String.length prefix in
  if String.length conn > plen && String.sub conn 0 plen = prefix then
    int_of_string_opt (String.sub conn plen (String.length conn - plen))
  else None

let send t peer msg =
  let ps = get_peer t peer in
  if ps.connected then Mux.reply t.mux ~id:(conn_id peer) msg

let connect a b =
  let ea, eb = Channel.Transport.pair () in
  (* Peer links carry quote-authenticated plaintext; the session key is
     only the mux attachment requirement, derived deterministically so
     both ends agree. *)
  let key =
    Crypto.Sha256.digest
      (Printf.sprintf "EGFLEET-LINK\x00%d/%d" (min a.node_id b.node_id)
         (max a.node_id b.node_id))
  in
  Mux.attach a.mux ~id:(conn_id b.node_id) ~key ea;
  Mux.attach b.mux ~id:(conn_id a.node_id) ~key eb;
  (get_peer a b.node_id).connected <- true;
  (get_peer b a.node_id).connected <- true

let fresh_nonce t =
  t.nonce_counter <- t.nonce_counter + 1;
  Crypto.Sha256.digest ("EGFLEET-NONCE\x00" ^ t.nonce_seed ^ u64le t.nonce_counter)

let begin_handshake t =
  Hashtbl.iter
    (fun peer ps ->
      if ps.connected && not ps.is_quarantined then begin
        let nonce = fresh_nonce t in
        ps.sent_nonce <- Some nonce;
        send t peer (Wire.Peer_hello { node = t.node_id; nonce })
      end)
    t.peers

let attested t peer =
  match Hashtbl.find_opt t.peers peer with
  | Some ps -> ps.is_attested && not ps.is_quarantined
  | None -> false

let quarantine_peer t peer =
  let ps = get_peer t peer in
  ps.is_quarantined <- true;
  ps.is_attested <- false

let quarantined t peer =
  match Hashtbl.find_opt t.peers peer with Some ps -> ps.is_quarantined | None -> false

let reject t peer reason =
  Metrics.fleet_rejected (Scheduler.metrics t.sched) reason;
  t.rejects <- (peer, reason) :: t.rejects

let rejections t = t.rejects
let peer_public t peer = t.peer_publics.(peer)
let provenance t key = Hashtbl.find_opt t.imported key
let imported_count t = Hashtbl.length t.imported
let cross_hits t = t.cross

(* Reconstruct the audit leaf a verdict must occupy in the sender's
   log. [Audit.Log.leaf_bytes] of this record is what the inclusion
   proof is checked against, so any divergence between the pushed
   verdict and the logged one breaks the proof. *)
let leaf_of_verdict ~key (v : Service.Cache.verdict) =
  {
    Audit.Log.key;
    accepted = v.Service.Cache.accepted;
    findings_digest = Service.Cache.findings_digest v.Service.Cache.findings;
    measurement = v.Service.Cache.measurement;
    programs_digest = v.Service.Cache.programs_digest;
    instructions = v.Service.Cache.instructions;
    disassembly_cycles = v.Service.Cache.disassembly_cycles;
    policy_cycles = v.Service.Cache.policy_cycles;
    loading_cycles = v.Service.Cache.loading_cycles;
  }

let push_for t ~key =
  match
    ( Hashtbl.find_opt t.verdicts key,
      Hashtbl.find_opt t.leaf_index key,
      Scheduler.audit_log t.sched )
  with
  | Some v, Some index, Some log ->
      let findings_digest = Service.Cache.findings_digest v.Service.Cache.findings in
      let quote =
        Sgx.Quote.quote_measured t.device ~measurement:t.identity
          ~report_data:(Manifest.verdict_binding ~key ~findings_digest)
      in
      let ckpt = Audit.Log.checkpoint log ~device:t.device ~measurement:t.identity in
      Metrics.audit_checkpointed (Scheduler.metrics t.sched);
      let proof = Audit.Log.prove_inclusion log ~index ~size:ckpt.Audit.Log.ckpt_size in
      Some
        (Wire.Verdict_push
           {
             node = t.node_id;
             key;
             verdict = Service.Cache.encode_verdict v;
             quote = Sgx.Quote.to_bytes quote;
             checkpoint = Audit.Log.checkpoint_to_bytes ckpt;
             index;
             proof;
           })
  | _ -> None

(* The receive-side trust rule for a pushed verdict. Checks are ordered
   so the cheapest guards run first and every failure is distinct:
   quarantine state, decode, verdict quote (signature / identity /
   binding), then checkpoint + inclusion proof. *)
let handle_push t ~peer ~key ~verdict ~quote ~checkpoint ~index ~proof =
  let ps = get_peer t peer in
  if ps.is_quarantined || not ps.is_attested then reject t peer Metrics.Quarantined
  else
    match
      ( Sgx.Quote.of_bytes quote,
        Service.Cache.decode_verdict verdict,
        Audit.Log.checkpoint_of_bytes checkpoint )
    with
    | None, _, _ | _, None, _ | _, _, None -> reject t peer Metrics.Malformed
    | Some q, Some v, Some ckpt -> (
        let expected = Manifest.derive_peer t.manifest ~peer in
        let findings_digest = Service.Cache.findings_digest v.Service.Cache.findings in
        match
          Sgx.Mage.check_quote t.peer_publics.(peer) ~identity:expected
            ~report_data:(Manifest.verdict_binding ~key ~findings_digest)
            q
        with
        | Error (Sgx.Mage.Bad_signature | Sgx.Mage.Wrong_identity) ->
            reject t peer Metrics.Quote;
            quarantine_peer t peer
        | Error Sgx.Mage.Wrong_binding -> reject t peer Metrics.Binding
        | Ok () -> (
            let leaf = leaf_of_verdict ~key v in
            match
              Audit.Log.verify_remote_leaf t.peer_publics.(peer) ~identity:expected ckpt
                ~index ~leaf ~proof
            with
            | Error (Audit.Log.Quote_invalid | Audit.Log.Alien_enclave) ->
                reject t peer Metrics.Quote;
                quarantine_peer t peer
            | Error Audit.Log.Binding_mismatch -> reject t peer Metrics.Binding
            | Error
                (Audit.Log.Out_of_range | Audit.Log.Proof_invalid | Audit.Log.Inconsistent)
              ->
                reject t peer Metrics.Proof
            | Ok () -> (
                match Scheduler.verdict_cache t.sched with
                | None -> ()
                | Some cache ->
                    Service.Cache.add cache key v;
                    Hashtbl.replace t.imported key
                      { peer; quote = q; checkpoint = ckpt; index; proof };
                    Metrics.fleet_imported (Scheduler.metrics t.sched))))

let handle_peer t ~peer (msg : Wire.t) =
  match msg with
  | Wire.Peer_hello { node; nonce } ->
      let ps = get_peer t peer in
      if node <> peer then reject t peer Metrics.Malformed
      else if ps.is_quarantined then reject t peer Metrics.Quarantined
      else if Hashtbl.mem t.seen_hellos (peer, nonce) then reject t peer Metrics.Replay
      else begin
        Hashtbl.replace t.seen_hellos (peer, nonce) ();
        let q =
          Sgx.Quote.quote_measured t.device ~measurement:t.identity
            ~report_data:(Manifest.hello_binding ~node:t.node_id ~nonce)
        in
        send t peer (Wire.Peer_quote { node = t.node_id; echo = nonce; quote = Sgx.Quote.to_bytes q })
      end
  | Wire.Peer_quote { node; echo; quote } -> (
      let ps = get_peer t peer in
      if node <> peer then reject t peer Metrics.Malformed
      else if ps.is_quarantined then reject t peer Metrics.Quarantined
      else
        match ps.sent_nonce with
        | Some n when String.equal n echo -> (
            match Sgx.Quote.of_bytes quote with
            | None -> reject t peer Metrics.Malformed
            | Some q -> (
                let expected = Manifest.derive_peer t.manifest ~peer in
                match
                  Sgx.Mage.check_quote t.peer_publics.(peer) ~identity:expected
                    ~report_data:(Manifest.hello_binding ~node:peer ~nonce:echo)
                    q
                with
                | Ok () ->
                    ps.sent_nonce <- None;
                    ps.is_attested <- true
                | Error (Sgx.Mage.Bad_signature | Sgx.Mage.Wrong_identity) ->
                    reject t peer Metrics.Quote;
                    quarantine_peer t peer
                | Error Sgx.Mage.Wrong_binding -> reject t peer Metrics.Binding))
        | _ ->
            (* An echo we never challenged with (or already consumed):
               a replayed or unsolicited handshake response. *)
            reject t peer Metrics.Replay)
  | Wire.Verdict_push { node; key; verdict; quote; checkpoint; index; proof } ->
      if node <> peer then reject t peer Metrics.Malformed
      else handle_push t ~peer ~key ~verdict ~quote ~checkpoint ~index ~proof
  | Wire.Verdict_pull { node; key } -> (
      let ps = get_peer t peer in
      if node <> peer then reject t peer Metrics.Malformed
      else if ps.is_quarantined || not ps.is_attested then reject t peer Metrics.Quarantined
      else
        match push_for t ~key with
        | Some msg ->
            send t peer msg;
            Metrics.fleet_pushed (Scheduler.metrics t.sched)
        | None -> ())
  | Wire.Checkpoint_gossip { node; checkpoint } -> (
      let ps = get_peer t peer in
      if node <> peer then reject t peer Metrics.Malformed
      else if ps.is_quarantined || not ps.is_attested then reject t peer Metrics.Quarantined
      else
        match Audit.Log.checkpoint_of_bytes checkpoint with
        | None -> reject t peer Metrics.Malformed
        | Some ckpt -> (
            let expected = Manifest.derive_peer t.manifest ~peer in
            if not (String.equal ckpt.Audit.Log.quote.Sgx.Quote.measurement expected) then begin
              reject t peer Metrics.Quote;
              quarantine_peer t peer
            end
            else
              match Audit.Log.verify_checkpoint t.peer_publics.(peer) ckpt with
              | Error Audit.Log.Quote_invalid ->
                  reject t peer Metrics.Quote;
                  quarantine_peer t peer
              | Error _ -> reject t peer Metrics.Binding
              | Ok () ->
                  (* A peer's log may only grow between gossips. *)
                  if ckpt.Audit.Log.ckpt_size < ps.last_ckpt_size then
                    reject t peer Metrics.Proof
                  else ps.last_ckpt_size <- ckpt.Audit.Log.ckpt_size))
  | _ ->
      (* Client-protocol traffic has no business on a peer link. *)
      reject t peer Metrics.Malformed

let request_pull t ~peer ~key = send t peer (Wire.Verdict_pull { node = t.node_id; key })

(* Index new log leaves (first occurrence wins: the inclusion proof a
   push carries refers to the earliest leaf for that key). *)
let scan_leaves t =
  match Scheduler.audit_log t.sched with
  | None -> false
  | Some log ->
      let size = Audit.Log.size log in
      let grew = size > t.scanned in
      for i = t.scanned to size - 1 do
        match Audit.Log.leaf log i with
        | Some leaf ->
            if not (Hashtbl.mem t.leaf_index leaf.Audit.Log.key) then
              Hashtbl.replace t.leaf_index leaf.Audit.Log.key i
        | None -> ()
      done;
      t.scanned <- size;
      grew

let iter_attested t f =
  Hashtbl.iter
    (fun peer ps -> if ps.connected && ps.is_attested && not ps.is_quarantined then f peer)
    t.peers

let broadcast_push t key =
  match push_for t ~key with
  | None -> ()
  | Some msg ->
      iter_attested t (fun peer ->
          send t peer msg;
          Metrics.fleet_pushed (Scheduler.metrics t.sched))

let gossip t =
  match Scheduler.audit_log t.sched with
  | None -> ()
  | Some log ->
      let ckpt = Audit.Log.checkpoint log ~device:t.device ~measurement:t.identity in
      Metrics.audit_checkpointed (Scheduler.metrics t.sched);
      let msg =
        Wire.Checkpoint_gossip
          { node = t.node_id; checkpoint = Audit.Log.checkpoint_to_bytes ckpt }
      in
      iter_attested t (fun peer -> send t peer msg)

let pump t =
  let events = Mux.poll t.mux in
  List.iter
    (function
      | Mux.Peer { conn; msg } -> (
          match peer_of_conn conn with
          | Some peer -> handle_peer t ~peer msg
          | None -> ())
      | Mux.Payload _ | Mux.Corrupt _ ->
          (* Peer links carry no client payload transfers. *)
          ())
    events;
  Scheduler.tick t.sched;
  let comps = Scheduler.drain_completions t.sched in
  let grew = scan_leaves t in
  List.iter
    (fun (c : Scheduler.completion) ->
      match c.Scheduler.verdict with
      | Ok v ->
          let key = Scheduler.job_key t.sched c.Scheduler.job in
          Hashtbl.replace t.verdicts key v;
          if c.Scheduler.cache_hit && Hashtbl.mem t.imported key then t.cross <- t.cross + 1;
          (* Fresh computations fan out; hits were either imported
             (the fleet already has them) or pushed when first run. *)
          if not c.Scheduler.cache_hit then broadcast_push t key
      | Error _ -> ())
    comps;
  if grew then gossip t;
  comps
