(** One inspector node of a fleet.

    A node is a full standalone inspection service — its own
    {!Service.Scheduler} (hence its own model enclave, verdict cache,
    audit log and metrics registry) — plus the peer protocol that turns
    N such services into one logical cache:

    + {e handshake}: on [Peer_hello {node; nonce}] a node answers with
      a quote over its MAGE-derived fleet identity binding the nonce;
      the challenger checks it against the identity it derived itself
      ({!Manifest.derive_peer}). Replayed hellos are rejected.
    + {e verdict exchange}: a completed local inspection is pushed to
      every attested peer as [Verdict_push] carrying the canonical
      verdict, a quote binding its cache key and findings digest, and
      the sender's latest quote-signed audit checkpoint with an
      inclusion proof for the verdict's leaf. The receiver imports into
      its cache only if {e all} of: sender attested and not
      quarantined; quote valid under the pinned device key, for the
      derived identity, binding exactly this verdict; checkpoint signed
      by the same identity and proving inclusion of the reconstructed
      leaf. Every failure is a distinct {!Service.Metrics.fleet_reject}.
    + {e trust revocation}: a peer that presents a forged or
      mis-identified quote is quarantined — nothing it says afterwards
      is imported.

    Imports never append audit leaves: a node's log records only the
    verdict events it answers itself, which keeps each node's audit
    root identical to a standalone scheduler serving the same
    substream. Provenance for every import is retained and
    re-verifiable ({!provenance}). *)

type evidence = {
  peer : int;
  quote : Sgx.Quote.t;  (** binds the verdict's key and findings digest *)
  checkpoint : Audit.Log.checkpoint;
  index : int;  (** the verdict's leaf index in the peer's log *)
  proof : string list;
}
(** Everything retained about one imported verdict — sufficient to
    re-run the full trust rule later against the pinned peer key. *)

type t

val create :
  manifest:Manifest.t ->
  id:int ->
  device:Sgx.Quote.device ->
  peer_publics:Crypto.Rsa.public array ->
  nonce_seed:string ->
  Service.Scheduler.config ->
  t
(** [peer_publics.(i)] is node [i]'s pinned attestation key (trusted
    hardware provisioning; MAGE removes the third party for software
    identity, not for device keys). The scheduler config must have
    [audit = true] — inclusion proofs require the log — and raises
    otherwise. *)

val id : t -> int
val identity : t -> string
val scheduler : t -> Service.Scheduler.t
val mux : t -> Channel.Session.Mux.mux

val connect : t -> t -> unit
(** Wire a loopback transport pair between two nodes and attach each
    end to the respective mux (connection ids ["peer-<i>"]). *)

val begin_handshake : t -> unit
(** Send a fresh [Peer_hello] to every connected peer. *)

val peer_public : t -> int -> Crypto.Rsa.public
(** The pinned device key for fleet member [peer] — what every quote
    from that peer (and any retained {!provenance}) verifies against. *)

val attested : t -> int -> bool
val quarantine_peer : t -> int -> unit
val quarantined : t -> int -> bool

val handle_peer : t -> peer:int -> Channel.Wire.t -> unit
(** Process one peer-protocol message as if it had arrived from [peer]'s
    connection. {!pump} calls this for mux traffic; rogue-peer tests
    call it directly with crafted messages. *)

val request_pull : t -> peer:int -> key:string -> unit
(** Send [peer] a [Verdict_pull] for [key] — the work-stealing warm-up:
    a job spilled away from its rendezvous node asks the warm node for
    its verdict before re-inspecting. *)

val push_for : t -> key:string -> Channel.Wire.t option
(** Build a [Verdict_push] for a verdict this node computed (or
    answered) itself: quote, fresh checkpoint, inclusion proof. [None]
    if the key has no locally-logged verdict. *)

val pump : t -> Service.Scheduler.completion list
(** One cooperative round: poll the mux and handle peer messages, tick
    the scheduler, drain completions. Freshly computed verdicts are
    pushed to all attested peers and a checkpoint is gossiped when the
    log grew. Returns the round's completions. *)

val provenance : t -> string -> evidence option
(** The retained import evidence for a cache key, if the verdict under
    that key was imported from a peer. *)

val imported_count : t -> int
val cross_hits : t -> int
(** Completions served from the cache where the entry had been imported
    from a peer — the fleet actually sharing work. *)

val rejections : t -> (int * Service.Metrics.fleet_reject) list
(** Rejected peer messages, newest first: (peer, reason). The same
    events tick the [fleet_rejected_*] metrics. *)
