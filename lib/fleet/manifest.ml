type t = {
  members : int;
  service_measurement : string;
  aux : string;
  snapshots : string array;
  identities : string array;
}

let u32le v = String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))
let u64le v = String.init 8 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

(* A node's build log up to (but not including) the common aux record:
   the shared judging-service measurement, then the node's own index.
   Everything before the snapshot is per-node public knowledge, so any
   party can recompute these snapshots — what MAGE adds is that the
   *final* identities need nothing beyond the aux record. *)
let pre_aux ~service_measurement ~node =
  let m = Sgx.Measurement.start ~base:0 ~size:0 in
  Sgx.Measurement.measure_data m ~tag:"EGFLEET1" ~content:service_measurement;
  Sgx.Measurement.measure_data m ~tag:"EGNODE1\x00" ~content:(u64le node);
  Sgx.Measurement.snapshot m

let build ~nodes ~service_measurement =
  if nodes <= 0 then invalid_arg "Fleet.Manifest.build: nodes must be positive";
  if String.length service_measurement <> 32 then
    invalid_arg "Fleet.Manifest.build: service_measurement must be 32 bytes";
  let snapshots = Array.init nodes (fun node -> pre_aux ~service_measurement ~node) in
  let aux = Sgx.Mage.aux_of_snapshots (Array.to_list snapshots) in
  let identities =
    Array.map
      (fun snapshot ->
        match Sgx.Mage.derive ~snapshot ~aux with
        | Some id -> id
        | None -> invalid_arg "Fleet.Manifest.build: snapshot does not resume")
      snapshots
  in
  { members = nodes; service_measurement; aux; snapshots; identities }

let members t = t.members
let aux t = t.aux
let service_measurement t = t.service_measurement

let pre_aux_snapshot t i =
  if i < 0 || i >= t.members then invalid_arg "Fleet.Manifest.pre_aux_snapshot: bad index";
  t.snapshots.(i)

let identity t i =
  if i < 0 || i >= t.members then invalid_arg "Fleet.Manifest.identity: bad index";
  t.identities.(i)

let derive_peer t ~peer =
  match Sgx.Mage.snapshots_of_aux t.aux with
  | None -> invalid_arg "Fleet.Manifest.derive_peer: malformed aux record"
  | Some snaps -> (
      if peer < 0 || peer >= List.length snaps then
        invalid_arg "Fleet.Manifest.derive_peer: bad index";
      match Sgx.Mage.derive ~snapshot:(List.nth snaps peer) ~aux:t.aux with
      | Some id -> id
      | None -> invalid_arg "Fleet.Manifest.derive_peer: snapshot does not resume")

let hello_binding ~node ~nonce =
  Crypto.Sha256.digest ("EGFLEET-HELLO\x00" ^ u32le node ^ nonce)

let verdict_binding ~key ~findings_digest =
  Crypto.Sha256.digest ("EGFLEET-VERDICT\x00" ^ key ^ findings_digest)
