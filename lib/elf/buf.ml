module W = struct
  type t = Buffer.t

  let create () = Buffer.create 4096
  let length = Buffer.length
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let u16 t v =
    u8 t v;
    u8 t (v lsr 8)

  let u32 t v =
    u16 t v;
    u16 t (v lsr 16)

  let u64 t v =
    if v < 0 then invalid_arg "Buf.W.u64: negative";
    u32 t v;
    u32 t (v lsr 32)

  let bytes t s = Buffer.add_string t s
  let zeros t n = Buffer.add_string t (String.make n '\x00')

  let pad_to t off =
    let cur = Buffer.length t in
    if off < cur then invalid_arg (Printf.sprintf "Buf.W.pad_to: offset 0x%x < current 0x%x" off cur);
    zeros t (off - cur)

  let contents = Buffer.contents

  let patch_u32 t ~pos v =
    let s = Buffer.contents t in
    let b = Bytes.of_string s in
    for i = 0 to 3 do Bytes.set b (pos + i) (Char.chr ((v lsr (8 * i)) land 0xff)) done;
    Buffer.clear t;
    Buffer.add_bytes t b
end

module R = struct
  type t = string

  exception Out_of_bounds of int

  let of_string s = s
  let length = String.length

  let check t pos n = if pos < 0 || pos + n > String.length t then raise (Out_of_bounds pos)

  let u8 t ~pos =
    check t pos 1;
    Char.code t.[pos]

  let u16 t ~pos =
    check t pos 2;
    Char.code t.[pos] lor (Char.code t.[pos + 1] lsl 8)

  let u32 t ~pos =
    check t pos 4;
    u16 t ~pos lor (u16 t ~pos:(pos + 2) lsl 16)

  let u64 t ~pos =
    check t pos 8;
    let lo = u32 t ~pos and hi = u32 t ~pos:(pos + 4) in
    if hi land 0xe000_0000 <> 0 then failwith "Buf.R.u64: value exceeds max_int";
    lo lor (hi lsl 32)

  let sub t ~pos ~len =
    check t pos len;
    String.sub t pos len

  let cstring t ~pos =
    check t pos 0;
    let rec find i = if i >= String.length t || t.[i] = '\x00' then i else find (i + 1) in
    let stop = find pos in
    String.sub t pos (stop - pos)
end

module Big = struct
  type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  let create n : t = Bigarray.Array1.create Bigarray.Char Bigarray.c_layout n
  let length (t : t) = Bigarray.Array1.dim t
  let get (t : t) i = Bigarray.Array1.get t i

  let of_string s =
    let n = String.length s in
    let t = create n in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set t i (String.unsafe_get s i)
    done;
    t

  let to_string t = String.init (length t) (fun i -> Bigarray.Array1.unsafe_get t i)

  let check (t : t) pos len =
    if pos < 0 || len < 0 || pos + len > length t then invalid_arg "Buf.Big: out of bounds"

  (* Zero-copy view: shares storage with [t]. *)
  let sub (t : t) ~pos ~len : t =
    check t pos len;
    Bigarray.Array1.sub t pos len

  let sub_string (t : t) ~pos ~len =
    check t pos len;
    String.init len (fun i -> Bigarray.Array1.unsafe_get t (pos + i))
end
