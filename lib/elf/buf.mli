(** Little-endian binary cursors used by the ELF writer and reader.

    All 64-bit fields are represented as OCaml [int]s; the virtual
    addresses and sizes this reproduction manipulates stay far below
    2{^62}, and the writer refuses anything larger. *)

module W : sig
  type t

  val create : unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int -> unit
  val bytes : t -> string -> unit
  val zeros : t -> int -> unit
  val pad_to : t -> int -> unit
  (** Pad with zero bytes up to an absolute offset (no-op if already
      there; raises if past it). *)

  val contents : t -> string

  val patch_u32 : t -> pos:int -> int -> unit
  (** Overwrite a previously written 32-bit field. *)
end

module R : sig
  type t

  exception Out_of_bounds of int

  val of_string : string -> t
  val length : t -> int
  val u8 : t -> pos:int -> int
  val u16 : t -> pos:int -> int
  val u32 : t -> pos:int -> int
  val u64 : t -> pos:int -> int
  (** @raise Failure if the value exceeds [max_int]. *)

  val sub : t -> pos:int -> len:int -> string
  val cstring : t -> pos:int -> string
  (** NUL-terminated string starting at [pos]. *)
end

(** Off-heap instruction buffers.

    A [Big.t] lives outside the OCaml heap, so parallel domains reading
    a multi-megabyte .text section share it without the GC tracing or
    copying it — the zero-copy substrate the decoder and analysis index
    read through. The type is a structural alias for a [Bigarray]
    1-d char array; the x86 and crypto layers declare the same alias
    and the three unify without inter-library dependencies. *)
module Big : sig
  type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  val create : int -> t
  val length : t -> int
  val get : t -> int -> char
  val of_string : string -> t

  val to_string : t -> string

  val sub : t -> pos:int -> len:int -> t
  (** Zero-copy view sharing storage with the parent buffer. *)

  val sub_string : t -> pos:int -> len:int -> string
  (** Copying extraction (for small slices that must be strings). *)
end
