(** Service-wide metrics registry.

    Aggregates what the one-shot pipeline already measures per job — the
    per-phase [Sgx.Perf] counters of [Engarde.Report] — across every job
    the service runs, plus the quantities that only exist at the service
    layer: queue depth, job latencies (modelled cycles, exponential
    histogram), retries, and cache effectiveness. [render] emits a
    Prometheus-style plain-text report, one sample per line, suitable
    for scraping or diffing in tests.

    Every counter is atomic: recording from any domain is safe, and
    [render] is a coherent point-in-time read of each sample (not a
    transaction across samples — the standard Prometheus contract). *)

type job_counts = {
  submitted : int;   (** admitted into the queue *)
  rejected : int;    (** refused at admission (backpressure, bad request) *)
  completed : int;   (** finished with a verdict (cached or computed) *)
  failed : int;      (** finished without a verdict (timeout, channel) *)
  retried : int;     (** retry attempts scheduled after transient failures *)
  cache_hits : int;  (** completions served from the verdict cache *)
}

type phase_totals = {
  disassembly : int;
  policy : int;
  loading : int;
  provisioning : int;  (** channel + crypto + enclave-build cycles *)
}

val latency_buckets : int array
(** Upper bounds (modelled cycles) of the histogram buckets; an implicit
    +Inf bucket follows the last entry. *)

type t

val create : unit -> t

val job_submitted : t -> unit
val job_rejected : t -> unit
val job_completed : t -> cache_hit:bool -> unit
val job_failed : t -> unit
val job_retried : t -> unit

val observe_run :
  t ->
  disassembly:int ->
  policy:int ->
  callgraph:int ->
  summary:int ->
  loading:int ->
  provisioning:int ->
  unit
(** Charge one real pipeline execution's per-phase cycles. [callgraph]
    and [summary] are the interprocedural-tier shares of the policy
    phase, broken out as [analysis_callgraph_cycles_total] /
    [analysis_summary_cycles_total] (zero unless an agreed policy
    demanded the call graph or callee summaries). Cache hits observe
    nothing — that is the amortization the cache exists for. *)

val observe_latency : t -> cycles:int -> unit
(** Total modelled cycles a job spent across all its attempts. *)

val set_queue_depth : t -> int -> unit
(** Gauge update; also tracks the peak. *)

val audit_appended : t -> log_size:int -> unit
(** One verdict appended to the audit transparency log; [log_size] is
    the log's new leaf count (kept as a gauge). *)

val audit_checkpointed : t -> unit
(** One quote-signed checkpoint issued over the audit log. *)

val set_audit_log_size : t -> int -> unit
(** Gauge update without counting an append (warm restart restores). *)

val observe_channel :
  t ->
  records:int ->
  bytes:int ->
  in_flight:int ->
  epoch_updates:int ->
  resumed:bool ->
  fallback:bool ->
  spec_hashes:int ->
  spec_adopted:int ->
  unit
(** One streaming transfer's channel telemetry (the fields of
    [Engarde.Provision.channel_stats]). A resumed run counts as a
    resumption, otherwise as a full handshake; [fallback] additionally
    counts a resumption that degraded to a full handshake. The in-flight
    gauge keeps the peak across transfers. *)

val set_ticket_stash : t -> int -> unit
(** Gauge: live entries in the scheduler's 0-RTT ticket stash. *)

val ticket_evicted : t -> unit
(** One (client, program-set) resumption ticket dropped by the stash's
    LRU cap. *)

type fleet_reject =
  | Quote  (** peer quote forged, missigned, or for the wrong identity *)
  | Binding  (** quote's report_data does not bind the pushed verdict *)
  | Proof  (** checkpoint does not prove inclusion of the verdict leaf *)
  | Replay  (** replayed [Peer_hello] (nonce already seen) *)
  | Quarantined  (** message from a quarantined or unattested peer *)
  | Malformed  (** peer message that does not decode *)

val fleet_reject_to_string : fleet_reject -> string

val fleet_pushed : t -> unit
(** One [Verdict_push] sent to a peer. *)

val fleet_imported : t -> unit
(** One remote verdict that passed the full trust rule and entered the
    local cache. *)

val fleet_rejected : t -> fleet_reject -> unit
val fleet_rejections : t -> (fleet_reject * int) list

val job_counts : t -> job_counts
val phase_totals : t -> phase_totals

val render :
  ?shards:Cache.stats array ->
  ?pool:Pool.stats ->
  t ->
  queue:Queue.stats ->
  cache:Cache.stats option ->
  string
(** The scrapeable text report. [cache = None] renders the
    cache-disabled configuration (no cache_* samples). [shards], when
    given with more than one entry, adds per-shard
    [cache_shard_*{shard="i"}] splits of the aggregate cache samples.
    [pool], when given, adds the work-stealing pool's contention
    counters ([pool_steals_total] / [pool_parks_total]). *)
