(* Work-stealing pool. Each worker owns a Chase–Lev deque: the owner
   pushes and pops LIFO at the bottom with plain atomic loads/stores,
   idle workers steal FIFO from the top with one CAS. External
   submitters (the scheduler thread) go through a small mutex-protected
   injector queue; everything on the hot path — owner scheduling,
   stealing, help-first claiming — is lock-free. Idle workers spin with
   exponential backoff ([Domain.cpu_relax]) and then park on a
   condition variable; submitters wake exactly one sleeper per task
   (broadcast only for batches), so there is no thundering herd on a
   global condvar as in the previous single-queue pool. *)

(* A task cell lives on some deque (or the injector) until a thread —
   a pool worker, or a help-first [run_all] caller — claims it with one
   CAS on [taken]. Claim-then-run means a deque can still hand the cell
   to a later popper; the flag makes the duplicate a no-op. *)
type cell = { run : unit -> unit; taken : bool Atomic.t }

(* Chase–Lev deque over a growable circular buffer. [top] only ever
   increases; [grow] copies the live window [top, bottom) into the new
   buffer at the same logical positions and never clears the old one,
   so a thief holding a stale buffer still reads the correct value for
   any position its CAS on [top] can win. *)
module Deque = struct
  type 'a t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    mutable buf : 'a option array; (* resized by the owner only *)
  }

  let create () =
    { top = Atomic.make 0; bottom = Atomic.make 0; buf = Array.make 256 None }

  let is_empty q = Atomic.get q.bottom - Atomic.get q.top <= 0

  let grow q t b =
    let old = q.buf in
    let n = Array.length old in
    let nu = Array.make (2 * n) None in
    for i = t to b - 1 do
      nu.(i land ((2 * n) - 1)) <- old.(i land (n - 1))
    done;
    q.buf <- nu

  (* Owner only. *)
  let push q v =
    let b = Atomic.get q.bottom and t = Atomic.get q.top in
    if b - t >= Array.length q.buf then grow q t b;
    q.buf.(b land (Array.length q.buf - 1)) <- Some v;
    Atomic.set q.bottom (b + 1)

  (* Owner only: LIFO end. The last element is raced against thieves
     with a CAS on [top]. *)
  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      Atomic.set q.bottom t;
      None
    end
    else begin
      let buf = q.buf in
      let v = buf.(b land (Array.length buf - 1)) in
      if b > t then v
      else begin
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (t + 1);
        if won then v else None
      end
    end

  (* Any thief: FIFO end, one CAS. *)
  let steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if b - t <= 0 then None
    else begin
      let buf = q.buf in
      let v = buf.(t land (Array.length buf - 1)) in
      if Atomic.compare_and_set q.top t (t + 1) then v else None
    end
end

type t = {
  id : int; (* distinguishes pools in the per-domain worker slot *)
  size : int;
  deques : cell Deque.t array;
  inj_m : Mutex.t;
  injector : cell Stdlib.Queue.t; (* external submissions *)
  closed : bool Atomic.t;
  park_m : Mutex.t;
  park_c : Condition.t;
  sleepers : int Atomic.t;
  steals : int Atomic.t;
  parks : int Atomic.t;
  join_m : Mutex.t; (* protects [workers] for idempotent shutdown *)
  mutable workers : unit Domain.t list; (* [] once joined *)
}

type stats = { steals : int; parks : int }

let stats (t : t) = { steals = Atomic.get t.steals; parks = Atomic.get t.parks }
let size (t : t) = t.size

let pool_ids = Atomic.make 0

(* Which pool/worker the current domain is, if any: lets a task running
   on a worker push nested [run_all] batches straight onto its own
   deque, no lock, no injector round-trip. *)
let worker_slot : (int * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_index t =
  match !(Domain.DLS.get worker_slot) with
  | Some (id, ix) when id = t.id -> Some ix
  | Some _ | None -> None

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable st : 'a state;
}

let resolve fut st =
  Mutex.lock fut.fm;
  fut.st <- st;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let await fut =
  Mutex.lock fut.fm;
  while fut.st = Pending do
    Condition.wait fut.fc fut.fm
  done;
  let st = fut.st in
  Mutex.unlock fut.fm;
  match st with
  | Done v -> v
  | Failed e -> raise e
  | Pending -> assert false

(* Is there anything anywhere a worker could run? Injector checked
   under its mutex so the pre-park / pre-exit decision synchronizes
   with batch submitters. *)
let has_work t =
  (let nonempty =
     Mutex.lock t.inj_m;
     let r = not (Stdlib.Queue.is_empty t.injector) in
     Mutex.unlock t.inj_m;
     r
   in
   nonempty)
  || Array.exists (fun d -> not (Deque.is_empty d)) t.deques

(* Wake sleepers after enqueueing work. [~all] broadcasts (batch
   submission); otherwise one signal wakes one worker. *)
let wake t ~all =
  if Atomic.get t.sleepers > 0 then begin
    Mutex.lock t.park_m;
    if all then Condition.broadcast t.park_c else Condition.signal t.park_c;
    Mutex.unlock t.park_m
  end

let try_injector t =
  if Stdlib.Queue.is_empty t.injector then None
  else begin
    Mutex.lock t.inj_m;
    let c =
      if Stdlib.Queue.is_empty t.injector then None
      else Some (Stdlib.Queue.pop t.injector)
    in
    Mutex.unlock t.inj_m;
    c
  end

let steal_sweep t ix =
  let n = t.size in
  let rec go k =
    if k >= n then None
    else begin
      let victim = (ix + k + n) mod n in
      if victim = ix then go (k + 1)
      else
        match Deque.steal t.deques.(victim) with
        | Some c ->
            Atomic.incr t.steals;
            Some c
        | None -> go (k + 1)
    end
  in
  go 0

let find_work t ix =
  match if ix >= 0 then Deque.pop t.deques.(ix) else None with
  | Some c -> Some c
  | None -> (
      match try_injector t with
      | Some c -> Some c
      | None -> steal_sweep t ix)

let run_cell c = if Atomic.compare_and_set c.taken false true then c.run ()

(* Park protocol: increment [sleepers] and re-check for work while
   holding [park_m]. A submitter enqueues first, then reads [sleepers]:
   either it sees our increment and signals under the same mutex, or
   our re-check sees its enqueue — a wakeup cannot be lost. *)
let park t =
  Mutex.lock t.park_m;
  Atomic.incr t.sleepers;
  if has_work t || Atomic.get t.closed then begin
    Atomic.decr t.sleepers;
    Mutex.unlock t.park_m
  end
  else begin
    Atomic.incr t.parks;
    Condition.wait t.park_c t.park_m;
    Atomic.decr t.sleepers;
    Mutex.unlock t.park_m
  end

let spin_rounds = 16

let worker_loop t ix =
  Domain.DLS.get worker_slot := Some (t.id, ix);
  let spins = ref 0 in
  let running = ref true in
  while !running do
    match find_work t ix with
    | Some c ->
        spins := 0;
        run_cell c
    | None ->
        if Atomic.get t.closed then begin
          (* Graceful drain: exit only when a full sweep finds nothing
             left anywhere — queued work always completes. *)
          if not (has_work t) then running := false
        end
        else if !spins < spin_rounds then begin
          incr spins;
          for _ = 1 to 1 lsl min !spins 6 do
            Domain.cpu_relax ()
          done
        end
        else begin
          spins := 0;
          park t
        end
  done;
  Domain.DLS.get worker_slot := None

let create ~domains =
  if domains <= 0 then invalid_arg "Service.Pool.create: domains must be positive";
  let t =
    {
      id = Atomic.fetch_and_add pool_ids 1;
      size = domains;
      deques = Array.init domains (fun _ -> Deque.create ());
      inj_m = Mutex.create ();
      injector = Stdlib.Queue.create ();
      closed = Atomic.make false;
      park_m = Mutex.create ();
      park_c = Condition.create ();
      sleepers = Atomic.make 0;
      steals = Atomic.make 0;
      parks = Atomic.make 0;
      join_m = Mutex.create ();
      workers = [];
    }
  in
  t.workers <- List.init domains (fun ix -> Domain.spawn (fun () -> worker_loop t ix));
  t

let make_cell f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); st = Pending } in
  let run () =
    match f () with
    | v -> resolve fut (Done v)
    | exception e -> resolve fut (Failed e)
  in
  ({ run; taken = Atomic.make false }, fut)

let submit_cell t f =
  if Atomic.get t.closed then invalid_arg "Service.Pool.submit: pool is shut down";
  let (cell, _) as cf = make_cell f in
  (match my_index t with
  | Some ix -> Deque.push t.deques.(ix) cell
  | None ->
      Mutex.lock t.inj_m;
      Stdlib.Queue.add cell t.injector;
      Mutex.unlock t.inj_m);
  wake t ~all:false;
  cf

let submit t f = snd (submit_cell t f)

let run_all t fs =
  if Atomic.get t.closed then invalid_arg "Service.Pool.submit: pool is shut down";
  let cells = List.map make_cell fs in
  (* Enqueue the whole batch in one shot: straight onto our own deque
     when called from a pool worker (lock-free), or into the injector
     under a single lock acquisition — not one lock round-trip per
     cell. *)
  (match my_index t with
  | Some ix ->
      let d = t.deques.(ix) in
      List.iter (fun (c, _) -> Deque.push d c) cells
  | None ->
      Mutex.lock t.inj_m;
      List.iter (fun (c, _) -> Stdlib.Queue.add c t.injector) cells;
      Mutex.unlock t.inj_m);
  wake t ~all:true;
  (* Help-first: claim every cell of this batch no worker has started
     yet — one CAS per cell, no lock — and run it here. Whatever
     remains is in flight on the pool. *)
  List.iter
    (fun (c, _) -> if Atomic.compare_and_set c.taken false true then c.run ())
    cells;
  (* Every cell is claimed by now; first failure in list order wins. *)
  let results = List.map (fun (_, fut) -> try Ok (await fut) with e -> Error e) cells in
  List.map (function Ok v -> v | Error e -> raise e) results

let shutdown t =
  Mutex.lock t.join_m;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.join_m;
  Atomic.set t.closed true;
  Mutex.lock t.park_m;
  Condition.broadcast t.park_c;
  Mutex.unlock t.park_m;
  List.iter Domain.join workers

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
