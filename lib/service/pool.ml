(* A task cell lives on the shared queue until some thread — a pool
   domain, or a help-first run_all caller — claims it by flipping
   [taken] under the pool mutex. Claim-then-run-outside-the-lock means
   the queue can hand the same cell to a popper after a helper claimed
   it; the flag makes the duplicate a no-op. *)
type cell = { run : unit -> unit; mutable taken : bool }

type t = {
  m : Mutex.t;
  work : Condition.t; (* new cell queued, or shutdown *)
  queue : cell Stdlib.Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list; (* [] once joined *)
  size : int;
}

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable st : 'a state;
}

let size t = t.size

let resolve fut st =
  Mutex.lock fut.fm;
  fut.st <- st;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let await fut =
  Mutex.lock fut.fm;
  while fut.st = Pending do
    Condition.wait fut.fc fut.fm
  done;
  let st = fut.st in
  Mutex.unlock fut.fm;
  match st with
  | Done v -> v
  | Failed e -> raise e
  | Pending -> assert false

(* Pop cells until an unclaimed one turns up; [None] only at shutdown
   with an empty queue (graceful: queued work always completes). *)
let rec next_cell t =
  if not (Stdlib.Queue.is_empty t.queue) then begin
    let c = Stdlib.Queue.pop t.queue in
    if c.taken then next_cell t
    else begin
      c.taken <- true;
      Some c
    end
  end
  else if t.closed then None
  else begin
    Condition.wait t.work t.m;
    next_cell t
  end

let worker_loop t =
  let rec go () =
    Mutex.lock t.m;
    let cell = next_cell t in
    Mutex.unlock t.m;
    match cell with
    | None -> ()
    | Some c ->
        c.run ();
        go ()
  in
  go ()

let create ~domains =
  if domains <= 0 then invalid_arg "Service.Pool.create: domains must be positive";
  let t =
    {
      m = Mutex.create ();
      work = Condition.create ();
      queue = Stdlib.Queue.create ();
      closed = false;
      workers = [];
      size = domains;
    }
  in
  t.workers <- List.init domains (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit_cell t f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); st = Pending } in
  let run () =
    match f () with
    | v -> resolve fut (Done v)
    | exception e -> resolve fut (Failed e)
  in
  let cell = { run; taken = false } in
  Mutex.lock t.m;
  if t.closed then begin
    Mutex.unlock t.m;
    invalid_arg "Service.Pool.submit: pool is shut down"
  end;
  Stdlib.Queue.add cell t.queue;
  Condition.signal t.work;
  Mutex.unlock t.m;
  (cell, fut)

let submit t f = snd (submit_cell t f)

let run_all t fs =
  let cells = List.map (fun f -> submit_cell t f) fs in
  (* Help-first: claim every cell of this batch no domain has started
     yet and run it here. Whatever remains is in flight on the pool. *)
  List.iter
    (fun (cell, _) ->
      Mutex.lock t.m;
      let mine = not cell.taken in
      if mine then cell.taken <- true;
      Mutex.unlock t.m;
      if mine then cell.run ())
    cells;
  (* Every cell is claimed by now; first failure in list order wins. *)
  let results = List.map (fun (_, fut) -> try Ok (await fut) with e -> Error e) cells in
  List.map (function Ok v -> v | Error e -> raise e) results

let shutdown t =
  Mutex.lock t.m;
  let workers = t.workers in
  t.closed <- true;
  t.workers <- [];
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join workers

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
