(** Fixed-size domain pool: the true-parallelism substrate.

    One pool, two consumers. The scheduler's parallel dispatch submits
    whole provisioning pipelines ({!submit} / {!await}); the analysis
    layer's parallel function hashing fans a task list out with
    {!run_all}. Both ride the same [domains] workers — there is exactly
    one pool implementation in the tree.

    Internally each worker owns a Chase–Lev work-stealing deque: the
    owner pushes and pops LIFO at the bottom, idle workers steal FIFO
    from the top with a single CAS, and external submitters go through
    a small injector queue. Idle workers spin with exponential backoff
    and then park on a condition variable; submitters wake one sleeper
    per task (a broadcast only for batches), so there is no global
    lock or condvar thundering herd on the scheduling hot path.
    Exceptions raised by a task are captured in its future and rethrown
    at {!await} on the caller's thread, so failure semantics match
    running the closure in place.

    {!run_all} is *help-first*: after enqueueing its tasks (one
    lock-free batch push from a worker, or one injector critical
    section from outside) the calling thread claims — one CAS per
    cell — and runs any of them that no pool domain has picked up yet.
    Two consequences: a [run_all] issued from {e inside} a pool task
    (the nested shape parallel hashing inside a dispatched pipeline
    produces) can never deadlock the fixed-size pool, and an idle
    caller contributes a worker's worth of throughput instead of
    blocking. *)

type t

val create : domains:int -> t
(** Spawn [domains] worker domains ([domains] must be positive). The
    whole process shares one OS scheduler: keep the total across live
    pools near [Domain.recommended_domain_count ()]. *)

val size : t -> int
(** The fixed worker count the pool was created with. *)

type stats = { steals : int; parks : int }
(** Scheduling-contention counters: successful steals from another
    worker's deque, and worker park events (a worker found no work
    after its spin budget and blocked). High parks with low steals
    means the pool is starved; high steals means the load is imbalanced
    but the deques are absorbing it. *)

val stats : t -> stats
(** Monotone totals since {!create}; readable at any time. *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue one task. Raises [Invalid_argument] after {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the task finishes; returns its value or rethrows the
    exception it raised. [await] is idempotent — a failed future
    rethrows on every call. *)

val run_all : t -> (unit -> 'a) list -> 'a list
(** Run every thunk (on the pool and/or the calling thread — see the
    help-first note above) and return the results in input order. If
    any task raised, the first failure in list order is rethrown after
    every task has been claimed, so no task is silently abandoned. *)

val shutdown : t -> unit
(** Graceful: already-queued tasks still run, then the worker domains
    are joined. Idempotent. Futures obtained before shutdown remain
    awaitable. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run the function, then [shutdown] (also on exception). *)
