(** Worker pool and scheduler: the first layer above
    [Engarde.Provision].

    The paper's contract is one client, one ELF, one verdict. A
    provisioning *service* must run many such inspections concurrently;
    this module steps up to [workers] provisioning pipelines in a
    cooperative round-robin — each [tick] advances every active worker
    by one pipeline stage (dequeue, cache lookup, run, backoff), so a
    single giant binary cannot monopolize the service and interleaving
    is deterministic. True parallelism slots in through the [dispatch]
    hook: the scheduler submits the pipeline closure on one tick and
    joins its outcome on the next, so with {!parallel_config} the
    closures of distinct jobs overlap on a {!Pool} of domains while
    admission, ordering, the cache, metrics and the audit log keep
    their sequential semantics — completions are re-sequenced by [seq],
    and modelled cycles (hence verdicts, retries and timeouts) do not
    depend on which domain ran a pipeline or in what order they
    finished.

    Failure handling: channel-layer failures ([Transfer_tampered]) are
    treated as transient and retried with exponential backoff up to
    [max_retries]; a job whose accumulated modelled cycles exceed
    [timeout_cycles] fails with [Timed_out]. Neither failure is cached —
    only verdicts are content-addressed, and a verdict exists only when
    the pipeline actually judged the binary. *)

type job = {
  client : string;            (** identity; reported back, not trusted *)
  payload : string;           (** the sealed ELF bytes *)
  policy_names : string list; (** agreed policy set: libc | stack | ifcc *)
}

type failure =
  | Rejected of string
      (** refused at admission: full queue, oversized payload, unknown
          policy name *)
  | Timed_out of { attempts : int; cycles : int }
  | Channel_failure of { attempts : int; last : string }
      (** transient channel failures exhausted the retry budget *)

val failure_to_string : failure -> string

type completion = {
  job : job;
  seq : int;                 (** submission order, 0-based *)
  verdict : (Cache.verdict, failure) result;
  cache_hit : bool;
  attempts : int;            (** pipeline executions, >= 1 unless rejected/hit *)
  latency_cycles : int;      (** modelled cycles across all attempts *)
  worker : int;              (** -1 for admission rejections *)
}

type config = {
  workers : int;
  queue_capacity : int;
  cache : [ `Enabled of int | `Disabled ];  (** capacity when enabled *)
  cache_shards : int;
      (** lock stripes of the verdict cache ({!Cache.sharded}); 1 — the
          default — is the classic single-lock global LRU. Striping
          never changes hit/miss outcomes, only contention, and the
          metrics report exposes per-shard splits when > 1. *)
  audit : bool;
      (** maintain the Merkle transparency log: every completion that
          carries a verdict (cache hits included) appends one leaf *)
  timeout_cycles : int option;
  max_retries : int;        (** extra attempts after the first *)
  backoff_ticks : int;      (** base backoff; doubles per retry *)
  max_payload_bytes : int option;
  libc_db : Toolchain.Libc.version;
      (** the provider's reference hash database — part of the cache key *)
  engine : [ `Vm | `Native ];
      (** how the five builtin flow policies execute: as negotiated VM
          programs ([`Vm], the default) or as the native OCaml modules
          ([`Native], the differential oracle). Pattern-mode baselines
          and the interprocedural depth variants are native under both;
          verdicts, findings and modelled policy cycles are identical
          either way. *)
  programs : (string * string) list;
      (** additional negotiable policy programs, [(name, canonical
          blob)] — the point of the VM: a new check is service data,
          not a recompile. Names must not shadow builtins and blobs
          must decode ({!Engarde}-independent: {!create} raises
          [Invalid_argument] otherwise). Custom programs always run on
          the VM. *)
  provision : Engarde.Provision.config;
      (** template; [policy_names] is overridden per job so the
          measurement binds each job's agreed policy set *)
  fault : attempt:int -> job -> (Channel.Wire.t -> Channel.Wire.t) option;
      (** adversary/chaos hook: a tamper function for this attempt, or
          [None] for a clean channel. Tests inject transient failures
          here. *)
  dispatch :
    (unit -> Engarde.Provision.outcome) -> unit -> Engarde.Provision.outcome;
      (** the Domain-parallelism hook point, in two phases: the
          scheduler calls [dispatch pipeline] when a worker starts an
          attempt (submit) and the returned thunk one tick later
          (join — may block until the outcome is ready). The default
          runs the pipeline in place at submit time and joins
          instantly; {!parallel_config} submits to a domain pool. *)
  hash_runner : Engarde.Analysis.hash_runner option;
      (** when set, passed to [Engarde.Provision.run] so each pipeline
          prehashes its candidate function digests in parallel
          (see {!Engarde.Analysis.prehash}); never changes verdicts or
          modelled cycles *)
  pool_stats : (unit -> Pool.stats) option;
      (** when set (as {!parallel_config} does), {!report} samples it
          and emits [pool_steals_total] / [pool_parks_total] — the
          work-stealing pool's contention telemetry *)
  channel : Engarde.Provision.channel;
      (** which transfer flavor jobs provision over. [`Legacy] (the
          default) keeps the paper-faithful block channel; [`Streaming]
          uses the EGREC1 record layer with pipelined inspection, and
          the scheduler stashes each accepted run's resumption ticket
          per (client, program set) so that client's next submission
          rides 0-RTT. Verdicts and modelled cycles are identical. *)
  ticket_epoch : int;
      (** the provider's ticket-key generation; bumping it invalidates
          every outstanding resumption ticket (resumed clients fall back
          to the full handshake once and get a fresh ticket) *)
  ticket_capacity : int;
      (** LRU cap on the 0-RTT ticket stash (entries are per (client,
          program set), so a long-running serve loop would otherwise
          grow it without bound). An evicted client simply pays one full
          handshake on its next submission; evictions are counted in
          the metrics. *)
}

val default_config : config
(** 4 workers, queue of 64, cache of 256 verdicts, audit off, no
    timeout, 2 retries, clean channel, in-place dispatch, no hash
    runner, libc-db v1.0.5, the [`Vm] engine with no custom programs,
    the legacy channel at ticket epoch 0,
    [Engarde.Provision.default_config]. *)

val parallel_config : ?config:config -> domains:int -> unit -> config * Pool.t
(** [config] (default {!default_config}) rewired for true parallelism:
    [dispatch] submits every pipeline to a fresh [domains]-wide {!Pool},
    [hash_runner] fans per-function hashing out over the same pool,
    [workers] is raised to at least [domains] so in-flight slots never
    bound the parallelism, and [cache_shards] to at least [domains] so
    concurrent pipelines don't serialize on one stripe lock. The pool
    is returned so the caller can {!Pool.shutdown} it when the
    scheduler is done. Verdicts, cache statistics and the audit-log
    root are identical to the sequential configuration on the same job
    mix — wall-clock time is the only observable difference. *)

val known_policies : string list
(** The builtin policy names every scheduler accepts: "libc", "stack",
    "ifcc", "lint", "sanitize", plus the paper-baseline
    "stack-pattern" / "ifcc-pattern" peephole modes and the
    summary-driven "stack-interproc" / "ifcc-interproc" depth variants
    (native under both engines; their call-graph facts are not yet
    frozen into the VM wire format). (The library also ships a
    [Policy_malware] module, but it needs a caller-supplied signature
    database and is deliberately not name-addressable here.) *)

val policies_of_names :
  db:(string * string) list -> string list -> (Engarde.Policy.t list, string) result
(** Instantiate native policy modules from their agreed names (the
    {!known_policies} set); [Error] names the first unknown policy. *)

type t

val program_set : t -> string list -> (string * string) list
(** The negotiated program set for a policy-name list: sorted-unique
    names paired with their canonical blobs (builtin DSL programs,
    native markers for the pattern baselines, configured custom
    programs). Raises [Not_found] on a name {!submit} would reject. *)

val programs_digest : t -> string list -> string
(** {!Channel.Session.policy_set_digest} of {!program_set} — what gets
    measured into the judging enclave, offered by the client, recorded
    in audit leaves, and folded into cache keys. *)

val create : config -> t
val config : t -> config
val metrics : t -> Metrics.t
val cache_stats : t -> Cache.stats option
val queue_stats : t -> Queue.stats

val verdict_cache : t -> Cache.t option
(** The live verdict cache ([None] when disabled). The fleet layer
    imports quote-verified peer verdicts through it; imports do not
    append audit leaves (the importing node only logs verdict events it
    answers itself). *)

val job_key : t -> job -> string
(** The content address this scheduler files [job]'s verdict under —
    what the fleet coordinator's rendezvous routing and peer verdict
    exchange key on. Raises [Not_found] on a policy name {!submit}
    would reject. *)

val ticket_stash_size : t -> int
(** Live entries in the 0-RTT ticket stash (bounded by
    [config.ticket_capacity]). *)

val audit_log : t -> Audit.Log.t option
(** The verdict transparency log ([None] unless [config.audit]). *)

val measurement : t -> string
(** The service's own enclave identity: the measurement of the EnGarde
    enclave built from the provisioning template. Checkpoint quotes and
    sealed state are bound to it. *)

val checkpoint : t -> device:Sgx.Quote.device -> Audit.Log.checkpoint option
(** Quote-sign the audit log's current head (counted in the metrics);
    [None] when auditing is off. *)

val save_state : t -> device:Sgx.Quote.device -> string
(** Serialize the audit log and verdict cache, increment the service's
    monotonic counter, and seal the result to the service measurement
    ({!Audit.Seal}). The returned blob is safe to hand to the untrusted
    host for storage. *)

val state_counter_id : t -> string
(** Name of the monotonic counter guarding this service's sealed state
    (derived from the service measurement). A host that persists
    counter NVRAM externally restores it under this id
    ({!Sgx.Quote.counter_restore}). *)

val load_state : t -> device:Sgx.Quote.device -> string -> (int * int, Audit.Seal.error) result
(** Warm-start a freshly created scheduler from a {!save_state} blob:
    restores the audit log (when [config.audit]) and cache contents.
    Returns [(log_leaves, cache_entries)] restored. Rollback, blobs
    sealed by a different enclave identity, and tampered blobs are
    rejected with the corresponding distinct {!Audit.Seal.error}. *)

val submit : t -> job -> (int, string) result
(** Admission control: validates the policy set and payload size, then
    enqueues. Returns the job's sequence number, or the rejection
    reason (also counted in the metrics). *)

val busy : t -> bool
(** Work queued or in flight. *)

val tick : t -> unit
(** One cooperative step: idle workers dequeue, active workers advance
    one stage, backoffs count down, gauges update. *)

val drain_completions : t -> completion list
(** Completions accumulated since the last drain, in submission order. *)

val run_until_idle : ?max_ticks:int -> t -> completion list
(** Tick until no work remains, then drain. *)

val batch : ?config:config -> job list -> completion list
(** Run a whole job list to completion on a fresh scheduler, feeding
    the queue as space frees up (no backpressure rejections; admission
    validation still applies). Completions come back in submission
    order, so the result is reproducible regardless of [workers] — same
    inputs, same verdicts. *)

val report : t -> string
(** The metrics registry rendered with current queue and cache stats. *)

val serve :
  t ->
  mux:Channel.Session.Mux.mux ->
  policies_for:(string -> string list) ->
  ?max_ticks:int ->
  unit ->
  completion list
(** The multiplexed server loop: poll the mux, turn completed payload
    transfers into jobs (the connection id is the client identity),
    tick the pool, and answer each finished job with a [Verdict] on its
    originating connection. Admission rejections and corrupt transfers
    are answered immediately. Returns when the mux has gone quiet and
    the pool is idle. *)
