type job = { client : string; payload : string; policy_names : string list }

type failure =
  | Rejected of string
  | Timed_out of { attempts : int; cycles : int }
  | Channel_failure of { attempts : int; last : string }

let failure_to_string = function
  | Rejected why -> "rejected at admission: " ^ why
  | Timed_out { attempts; cycles } ->
      Printf.sprintf "timed out after %d attempt(s) (%d modelled cycles)" attempts cycles
  | Channel_failure { attempts; last } ->
      Printf.sprintf "channel failure after %d attempt(s): %s" attempts last

type completion = {
  job : job;
  seq : int;
  verdict : (Cache.verdict, failure) result;
  cache_hit : bool;
  attempts : int;
  latency_cycles : int;
  worker : int;
}

type config = {
  workers : int;
  queue_capacity : int;
  cache : [ `Enabled of int | `Disabled ];
  cache_shards : int;
  audit : bool;
  timeout_cycles : int option;
  max_retries : int;
  backoff_ticks : int;
  max_payload_bytes : int option;
  libc_db : Toolchain.Libc.version;
  engine : [ `Vm | `Native ];
  programs : (string * string) list;
  provision : Engarde.Provision.config;
  fault : attempt:int -> job -> (Channel.Wire.t -> Channel.Wire.t) option;
  dispatch :
    (unit -> Engarde.Provision.outcome) -> unit -> Engarde.Provision.outcome;
  hash_runner : Engarde.Analysis.hash_runner option;
  pool_stats : (unit -> Pool.stats) option;
  channel : Engarde.Provision.channel;
  ticket_epoch : int;
  ticket_capacity : int;
}

let default_config =
  {
    workers = 4;
    queue_capacity = 64;
    cache = `Enabled 256;
    cache_shards = 1;
    audit = false;
    timeout_cycles = None;
    max_retries = 2;
    backoff_ticks = 2;
    max_payload_bytes = Some (16 * 1024 * 1024);
    libc_db = Toolchain.Libc.V1_0_5;
    engine = `Vm;
    programs = [];
    provision = Engarde.Provision.default_config;
    fault = (fun ~attempt:_ _ -> None);
    (* Sequential: the pipeline runs at submission, the join is a
       no-op. [parallel_config] swaps in a domain-pool dispatch with
       the same two-phase shape. *)
    dispatch =
      (fun pipeline ->
        let r = pipeline () in
        fun () -> r);
    hash_runner = None;
    pool_stats = None;
    (* Legacy by default: existing deployments (and the fault-injection
       hooks, which pattern-match [Code_block]) see the paper-faithful
       wire format unless the provider opts into streaming. *)
    channel = `Legacy;
    ticket_epoch = 0;
    ticket_capacity = 256;
  }

(* The domain-pool dispatch: submit on the Run tick, block on the Join
   tick. Pipelines for distinct jobs overlap on the pool's domains
   while the scheduler keeps stepping its cooperative tick loop. *)
let parallel_dispatch pool pipeline =
  let fut = Pool.submit pool pipeline in
  fun () -> Pool.await fut

let parallel_config ?(config = default_config) ~domains () =
  let pool = Pool.create ~domains in
  ( {
      config with
      (* At least one scheduler worker per domain, or in-flight slots —
         not cores — would bound the parallelism. *)
      workers = max config.workers domains;
      (* Likewise at least one cache stripe per domain, so concurrent
         pipelines don't serialize on one shard lock. *)
      cache_shards = max config.cache_shards domains;
      dispatch = parallel_dispatch pool;
      hash_runner = Some (fun tasks -> Pool.run_all pool tasks);
      pool_stats = Some (fun () -> Pool.stats pool);
    },
    pool )

let known_policies =
  [
    "libc"; "stack"; "ifcc"; "lint"; "sanitize";
    "stack-pattern"; "ifcc-pattern";
    "stack-interproc"; "ifcc-interproc";
  ]

let vm_builtins = [ "libc"; "stack"; "ifcc"; "lint"; "sanitize" ]

(* Canonical blobs for the negotiated program set. The five flow
   policies travel as real VM programs. The pattern-mode baselines have
   no DSL transcription (their quadratic window scans are what the flow
   policies exist to replace), and the interprocedural depth variants
   deliberately stay native on both engines until the call-graph fact
   interface is stable enough to freeze into the wire format — so each
   contributes an opaque native marker: the negotiated digest still
   commits to their selection, and both engines execute them natively. *)
let native_marker name = "EGNATIVE1\x00" ^ name

let builtin_programs ~db =
  Policyvm.Builtin.all ~db ~exempt:Toolchain.Libc.function_names

let builtin_blobs ~db =
  List.map (fun (n, p) -> (n, Policyvm.Encode.to_bytes p)) (builtin_programs ~db)
  @ List.map
      (fun n -> (n, native_marker n))
      [ "stack-pattern"; "ifcc-pattern"; "stack-interproc"; "ifcc-interproc" ]

let policies_of_names ~db names =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "libc" :: rest -> go (Engarde.Policy_libc.make ~db () :: acc) rest
    | "stack" :: rest ->
        go (Engarde.Policy_stack.make ~exempt:Toolchain.Libc.function_names () :: acc) rest
    | "ifcc" :: rest -> go (Engarde.Policy_ifcc.make () :: acc) rest
    | "lint" :: rest -> go (Engarde.Policy_lint.make () :: acc) rest
    | "sanitize" :: rest -> go (Engarde.Policy_sanitize.make () :: acc) rest
    (* The interprocedural tier: dominance and masking proofs carried
       across call edges through function summaries. *)
    | "stack-interproc" :: rest ->
        go
          (Engarde.Policy_stack.make ~exempt:Toolchain.Libc.function_names
             ~depth:`Interproc ()
          :: acc)
          rest
    | "ifcc-interproc" :: rest ->
        go (Engarde.Policy_ifcc.make ~depth:`Interproc () :: acc) rest
    (* The paper's peephole baselines, kept addressable so clients can
       request (and audit logs can distinguish) the unsound mode. *)
    | "stack-pattern" :: rest ->
        go
          (Engarde.Policy_stack.make ~exempt:Toolchain.Libc.function_names
             ~mode:`Pattern ()
          :: acc)
          rest
    | "ifcc-pattern" :: rest -> go (Engarde.Policy_ifcc.make ~mode:`Pattern () :: acc) rest
    | unknown :: _ ->
        Error
          (Printf.sprintf "unknown policy %S (expected one of: %s)" unknown
             (String.concat ", " known_policies))
  in
  go [] names

(* An admitted job being stepped by a worker. *)
type active = {
  ajob : job;
  aseq : int;
  akey : string;          (* content address, computed at admission *)
  mutable attempts : int;
  mutable cycles : int;   (* accumulated across attempts *)
}

type worker_state =
  | Idle
  | Lookup of active
  | Run of active
  | Join of active * (unit -> Engarde.Provision.outcome)
      (* attempt in flight on the dispatch substrate; the thunk blocks
         until its outcome is ready *)
  | Backoff of active * int  (* ticks until retry *)

type t = {
  cfg : config;
  db : (string * string) list lazy_t;  (* reference libc hash database *)
  vm_progs : (string * Policyvm.Prog.t) list lazy_t;  (* builtin DSL programs *)
  blobs : (string * string) list lazy_t;  (* negotiable (name, blob) registry *)
  libc_db_version : string;
  queue : active Queue.t;
  cache : Cache.t option;
  mutable audit_log : Audit.Log.t option;
  metrics : Metrics.t;
  workers : worker_state array;
  mutable next_seq : int;
  mutable completions : completion list;  (* newest first *)
  (* Per-client resumption tickets from accepted streaming runs, keyed
     by client id and the negotiated program digest (a ticket binds the
     judging enclave's measurement, which the policy set determines).
     Read and written on the scheduler thread only. LRU-bounded at
     [cfg.ticket_capacity]: a long-running serve loop sees an unbounded
     population of (client, program-set) pairs, and without the cap the
     stash would grow forever. The value carries its last-use stamp. *)
  tickets : (string, (string * string) * int) Hashtbl.t;
  mutable ticket_clock : int;
}

let create (cfg : config) =
  if cfg.workers <= 0 then invalid_arg "Service.Scheduler.create: workers must be positive";
  if cfg.cache_shards <= 0 then
    invalid_arg "Service.Scheduler.create: cache_shards must be positive";
  if cfg.ticket_capacity <= 0 then
    invalid_arg "Service.Scheduler.create: ticket_capacity must be positive";
  (* Custom programs are provider configuration, not client input:
     reject malformed ones loudly at service construction. *)
  List.iter
    (fun (name, blob) ->
      if List.mem name known_policies then
        invalid_arg
          (Printf.sprintf "Service.Scheduler.create: program %S shadows a builtin policy"
             name);
      match Policyvm.Encode.decode blob with
      | Ok _ -> ()
      | Error e ->
          invalid_arg
            (Printf.sprintf "Service.Scheduler.create: program %S does not decode: %s" name
               e))
    cfg.programs;
  let db = lazy (Toolchain.Libc.hash_db cfg.libc_db) in
  {
    cfg;
    db;
    vm_progs = lazy (builtin_programs ~db:(Lazy.force db));
    blobs = lazy (builtin_blobs ~db:(Lazy.force db) @ cfg.programs);
    libc_db_version = Toolchain.Libc.version_to_string cfg.libc_db;
    queue = Queue.create ~capacity:cfg.queue_capacity;
    cache =
      (match cfg.cache with
      | `Enabled cap -> Some (Cache.sharded ~shards:cfg.cache_shards ~capacity:cap)
      | `Disabled -> None);
    audit_log = (if cfg.audit then Some (Audit.Log.create ()) else None);
    metrics = Metrics.create ();
    workers = Array.make cfg.workers Idle;
    next_seq = 0;
    completions = [];
    tickets = Hashtbl.create 16;
    ticket_clock = 0;
  }

let config t = t.cfg
let metrics t = t.metrics

(* The negotiated program set for a job: sorted-unique policy names,
   each paired with its canonical blob. Client and provider hash
   exactly these bytes, and both engines execute exactly this set, so
   one digest covers the agreement regardless of engine. *)
let program_set t names =
  let blobs = Lazy.force t.blobs in
  List.map (fun n -> (n, List.assoc n blobs)) (List.sort_uniq compare names)

let programs_digest t names = Channel.Session.policy_set_digest (program_set t names)

let negotiable t = known_policies @ List.map fst t.cfg.programs

(* One policy instance for one attempt. Builtins run as VM programs
   under the [`Vm] engine and as native modules under [`Native] (the
   differential oracle); the pattern-mode baselines are native under
   both; custom programs always interpret. *)
let policy_for t name =
  let native () =
    match policies_of_names ~db:(Lazy.force t.db) [ name ] with
    | Ok [ p ] -> p
    | Ok _ | Error _ -> invalid_arg ("Service.Scheduler: unknown policy " ^ name)
  in
  match t.cfg.engine with
  | `Vm when List.mem name vm_builtins ->
      Policyvm.Vm.policy (List.assoc name (Lazy.force t.vm_progs))
  | `Vm | `Native ->
      if List.mem name known_policies then native ()
      else begin
        match Policyvm.Vm.of_blob (List.assoc name (Lazy.force t.blobs)) with
        | Ok p -> p
        | Error e ->
            invalid_arg (Printf.sprintf "Service.Scheduler: program %S: %s" name e)
      end
let cache_stats t = Option.map Cache.stats t.cache
let queue_stats t = Queue.stats t.queue
let audit_log t = t.audit_log
let verdict_cache t = t.cache

(* The content address this scheduler would file [job]'s verdict under
   — what the fleet coordinator routes on and peers exchange verdicts
   by. Raises [Not_found] on policy names {!submit} would reject. *)
let job_key t (job : job) =
  Cache.key ~payload:job.payload ~policy_names:job.policy_names
    ~libc_db_version:t.libc_db_version
    ~programs_digest:(programs_digest t job.policy_names)

(* The service's own enclave identity: the measurement of the EnGarde
   enclave its provisioning template builds. Sealing and checkpoint
   quotes are bound to it. *)
let measurement t = Engarde.Provision.expected_measurement t.cfg.provision

let checkpoint t ~device =
  Option.map
    (fun log ->
      Metrics.audit_checkpointed t.metrics;
      Audit.Log.checkpoint log ~device ~measurement:(measurement t))
    t.audit_log

(* --- sealed persistence (warm restart) ----------------------------- *)

(* v2: the embedded cache/log sections carry program digests and the
   cache keys include them; a v1 blob must not be reused under the new
   keying. *)
let state_magic = "EGSTATE2"
let stale_state_magic = "EGSTATE1"
let state_counter_prefix = "engarde-state/"
let u64_be n = String.init 8 (fun i -> Char.chr ((n lsr (8 * (7 - i))) land 0xff))

let state_counter_id_of measurement = state_counter_prefix ^ Crypto.Sha256.hex measurement
let state_counter_id t = state_counter_id_of (measurement t)

let save_state t ~device =
  let measurement = measurement t in
  let counter = Sgx.Quote.counter_increment device ~id:(state_counter_id_of measurement) in
  let section s = u64_be (String.length s) ^ s in
  let log_blob = match t.audit_log with Some l -> Audit.Log.export l | None -> "" in
  let cache_blob = match t.cache with Some c -> Cache.export c | None -> "" in
  Audit.Seal.seal
    ~key:(Sgx.Quote.seal_key device ~measurement)
    ~measurement ~counter
    (state_magic ^ section log_blob ^ section cache_blob)

let load_state t ~device blob =
  let measurement = measurement t in
  let counter = Sgx.Quote.counter_read device ~id:(state_counter_id_of measurement) in
  match Audit.Seal.unseal ~key:(Sgx.Quote.seal_key device ~measurement) ~measurement ~counter blob with
  | Error e -> Error e
  | Ok plain ->
      (* The MAC already vouched for these bytes; a parse failure here
         means the blob predates the format and cannot be loaded. *)
      let len = String.length plain in
      let u64_at pos =
        let v = ref 0 in
        for i = pos to pos + 7 do
          v := (!v lsl 8) lor Char.code plain.[i]
        done;
        !v
      in
      let section pos =
        if pos + 8 > len then None
        else
          let n = u64_at pos in
          if pos + 8 + n > len then None else Some (String.sub plain (pos + 8) n, pos + 8 + n)
      in
      let ( let* ) o f = match o with Some x -> f x | None -> Error Audit.Seal.Truncated in
      if len >= 8 && String.sub plain 0 8 = stale_state_magic then
        (* An authentic blob from the previous state format: its
           verdicts were keyed without program digests, so warm-starting
           from it would serve stale answers. Reported as [Stale]
           (format versions in place of counters), like a rollback. *)
        Error (Audit.Seal.Stale { sealed = 1; current = 2 })
      else if len < 8 || String.sub plain 0 8 <> state_magic then Error Audit.Seal.Truncated
      else
        let* log_blob, pos = section 8 in
        let* cache_blob, pos = section pos in
        if pos <> len then Error Audit.Seal.Truncated
        else
          let* log_n =
            if log_blob = "" || not t.cfg.audit then Some 0
            else
              match Audit.Log.import log_blob with
              | None -> None
              | Some log ->
                  t.audit_log <- Some log;
                  Metrics.set_audit_log_size t.metrics (Audit.Log.size log);
                  Some (Audit.Log.size log)
          in
          let* cache_n =
            if cache_blob = "" then Some 0
            else
              match t.cache with
              | None -> Some 0
              | Some c -> (
                  match Cache.import c cache_blob with Ok n -> Some n | Error _ -> None)
          in
          Ok (log_n, cache_n)

let validate t job =
  match List.find_opt (fun n -> not (List.mem n (negotiable t))) job.policy_names with
  | Some unknown -> Some (Printf.sprintf "unknown policy %S" unknown)
  | None -> (
      match t.cfg.max_payload_bytes with
      | Some limit when String.length job.payload > limit ->
          Some
            (Printf.sprintf "payload of %d bytes exceeds the %d-byte admission limit"
               (String.length job.payload) limit)
      | _ -> None)

let submit t job =
  match validate t job with
  | Some why ->
      Metrics.job_rejected t.metrics;
      Error why
  | None ->
      let seq = t.next_seq in
      let active = { ajob = job; aseq = seq; akey = job_key t job; attempts = 0; cycles = 0 } in
      (match Queue.submit t.queue active with
      | Error `Queue_full ->
          Metrics.job_rejected t.metrics;
          Error
            (Printf.sprintf "queue full (%d jobs waiting); resubmit later"
               (Queue.depth t.queue))
      | Ok () ->
          t.next_seq <- seq + 1;
          Metrics.job_submitted t.metrics;
          Ok seq)

(* Every completion carrying a verdict becomes one transparency-log
   leaf: the log records verdict *events* (cache hits included — the
   provider answered from the cache and is accountable for it), so the
   audit trail covers exactly what clients were told. Failures reach no
   verdict and leave no leaf, mirroring the cache. *)
let audit_append t a (v : Cache.verdict) =
  match t.audit_log with
  | None -> ()
  | Some log ->
      let leaf =
        {
          Audit.Log.key = a.akey;
          accepted = v.Cache.accepted;
          findings_digest = Cache.findings_digest v.Cache.findings;
          measurement = v.Cache.measurement;
          programs_digest = v.Cache.programs_digest;
          instructions = v.Cache.instructions;
          disassembly_cycles = v.Cache.disassembly_cycles;
          policy_cycles = v.Cache.policy_cycles;
          loading_cycles = v.Cache.loading_cycles;
        }
      in
      ignore (Audit.Log.append log leaf);
      Metrics.audit_appended t.metrics ~log_size:(Audit.Log.size log)

let complete t ~worker a verdict ~cache_hit =
  (match verdict with
  | Ok v ->
      Metrics.job_completed t.metrics ~cache_hit;
      audit_append t a v
  | Error _ -> Metrics.job_failed t.metrics);
  Metrics.observe_latency t.metrics ~cycles:a.cycles;
  t.completions <-
    {
      job = a.ajob;
      seq = a.aseq;
      verdict;
      cache_hit;
      attempts = a.attempts;
      latency_cycles = a.cycles;
      worker;
    }
    :: t.completions

let verdict_of_outcome (o : Engarde.Provision.outcome) =
  let accepted, detail =
    match o.Engarde.Provision.result with
    | Ok loaded ->
        ( true,
          Printf.sprintf "policy-compliant; %d executable pages, %d relocations"
            (List.length loaded.Engarde.Loader.exec_pages)
            loaded.Engarde.Loader.relocations_applied )
    | Error r -> (false, Engarde.Provision.rejection_to_string r)
  in
  let report = o.Engarde.Provision.report in
  {
    Cache.accepted;
    detail;
    measurement = o.Engarde.Provision.measurement;
    programs_digest =
      Option.value o.Engarde.Provision.negotiated_digest ~default:"";
    instructions = report.Engarde.Report.instructions;
    disassembly_cycles = Sgx.Perf.total_cycles report.Engarde.Report.disassembly;
    policy_cycles =
      Sgx.Perf.total_cycles report.Engarde.Report.analysis
      + Sgx.Perf.total_cycles report.Engarde.Report.callgraph
      + Sgx.Perf.total_cycles report.Engarde.Report.summary
      + Sgx.Perf.total_cycles report.Engarde.Report.policy;
    loading_cycles = Sgx.Perf.total_cycles report.Engarde.Report.loading;
    findings = Engarde.Provision.findings o;
  }

let ticket_key t a = a.ajob.client ^ "/" ^ programs_digest t a.ajob.policy_names

(* Ticket-stash LRU. The stash is tiny (hundreds), touched once per
   streaming attempt, and scheduler-thread-only, so a linear
   minimum-stamp scan at eviction time is simpler than threading a
   recency list through the table. *)
let ticket_find t k =
  match Hashtbl.find_opt t.tickets k with
  | None -> None
  | Some (stash, _) ->
      t.ticket_clock <- t.ticket_clock + 1;
      Hashtbl.replace t.tickets k (stash, t.ticket_clock);
      Some stash

let ticket_drop t k =
  Hashtbl.remove t.tickets k;
  Metrics.set_ticket_stash t.metrics (Hashtbl.length t.tickets)

let ticket_store t k stash =
  if (not (Hashtbl.mem t.tickets k)) && Hashtbl.length t.tickets >= t.cfg.ticket_capacity
  then begin
    let victim =
      Hashtbl.fold
        (fun key (_, stamp) acc ->
          match acc with
          | Some (_, best) when best <= stamp -> acc
          | _ -> Some (key, stamp))
        t.tickets None
    in
    match victim with
    | Some (key, _) ->
        Hashtbl.remove t.tickets key;
        Metrics.ticket_evicted t.metrics
    | None -> ()
  end;
  t.ticket_clock <- t.ticket_clock + 1;
  Hashtbl.replace t.tickets k (stash, t.ticket_clock);
  Metrics.set_ticket_stash t.metrics (Hashtbl.length t.tickets)

let ticket_stash_size t = Hashtbl.length t.tickets

(* Launch one real pipeline execution (one attempt) for [a]. Everything
   the pipeline closure touches is prepared here, on the scheduler
   thread — the libc db is forced, the policy instances are fresh
   per-attempt — so the closure only reads immutable or private state
   and is safe to run on any domain the dispatch picks. *)
let start_attempt t ~worker a =
  a.attempts <- a.attempts + 1;
  let job = a.ajob in
  let policies = List.map (policy_for t) job.policy_names in
  let programs = program_set t job.policy_names in
  let provision_cfg =
    {
      t.cfg.provision with
      Engarde.Provision.policy_names = job.policy_names;
      policy_digest = Channel.Session.policy_set_digest programs;
    }
  in
  let tamper = t.cfg.fault ~attempt:a.attempts job in
  let hash_runner = t.cfg.hash_runner in
  let channel = t.cfg.channel in
  let ticket_epoch = t.cfg.ticket_epoch in
  (* A stashed ticket turns this attempt into a 0-RTT resumption; a
     stale or mismatched one falls back inside [Provision.run]. *)
  let resume =
    match channel with
    | `Legacy -> None
    | `Streaming -> ticket_find t (ticket_key t a)
  in
  let join =
    t.cfg.dispatch (fun () ->
        Engarde.Provision.run ?tamper ?hash_runner ~policies ~programs ~channel ?resume
          ~ticket_epoch provision_cfg ~payload:job.payload)
  in
  t.workers.(worker) <- Join (a, join)

(* The attempt's outcome is in hand (the join returned): charge the
   modelled cycles and decide — retry, fail, time out, or complete. *)
let finish_attempt t ~worker a outcome =
  let report = outcome.Engarde.Provision.report in
  let phase p = Sgx.Perf.total_cycles p in
  let disassembly = phase report.Engarde.Report.disassembly in
  let callgraph = phase report.Engarde.Report.callgraph in
  let summary = phase report.Engarde.Report.summary in
  let policy =
    phase report.Engarde.Report.analysis + phase report.Engarde.Report.policy
    + callgraph + summary
  in
  let loading = phase report.Engarde.Report.loading in
  let provisioning = phase report.Engarde.Report.provisioning in
  Metrics.observe_run t.metrics ~disassembly ~policy ~callgraph ~summary ~loading
    ~provisioning;
  a.cycles <- a.cycles + disassembly + policy + loading + provisioning;
  (match outcome.Engarde.Provision.channel_stats with
  | None -> ()
  | Some (st : Engarde.Provision.channel_stats) ->
      Metrics.observe_channel t.metrics ~records:st.Engarde.Provision.records
        ~bytes:st.Engarde.Provision.record_bytes ~in_flight:st.Engarde.Provision.in_flight_peak
        ~epoch_updates:st.Engarde.Provision.epoch_updates ~resumed:st.Engarde.Provision.resumed
        ~fallback:st.Engarde.Provision.fallback ~spec_hashes:st.Engarde.Provision.spec_hashes
        ~spec_adopted:st.Engarde.Provision.spec_adopted;
      (* A fallback consumed the stashed ticket (the server refused it);
         drop it so the next attempt doesn't replay the same failure. *)
      if st.Engarde.Provision.fallback then ticket_drop t (ticket_key t a));
  (* An accepted streaming run leaves a fresh ticket for this client's
     next submission under the same program set. *)
  (match outcome.Engarde.Provision.ticket with
  | Some stash -> ticket_store t (ticket_key t a) stash
  | None -> ());
  let transient =
    match outcome.Engarde.Provision.result with
    | Error (Engarde.Provision.Transfer_tampered why) -> Some why
    | _ -> None
  in
  match transient with
  | Some why ->
      if a.attempts <= t.cfg.max_retries then begin
        Metrics.job_retried t.metrics;
        (* Exponential backoff: base * 2^(attempt-1) idle ticks. *)
        t.workers.(worker) <-
          Backoff (a, t.cfg.backoff_ticks * (1 lsl (a.attempts - 1)))
      end
      else begin
        complete t ~worker a (Error (Channel_failure { attempts = a.attempts; last = why }))
          ~cache_hit:false;
        t.workers.(worker) <- Idle
      end
  | None -> (
      match t.cfg.timeout_cycles with
      | Some budget when a.cycles > budget ->
          (* Over budget: the verdict is discarded and never cached. *)
          complete t ~worker a
            (Error (Timed_out { attempts = a.attempts; cycles = a.cycles }))
            ~cache_hit:false;
          t.workers.(worker) <- Idle
      | _ ->
          let verdict = verdict_of_outcome outcome in
          Option.iter (fun c -> Cache.add c a.akey verdict) t.cache;
          complete t ~worker a (Ok verdict) ~cache_hit:false;
          t.workers.(worker) <- Idle)

let step_worker t worker =
  match t.workers.(worker) with
  | Idle -> (
      match Queue.take t.queue with
      | None -> ()
      | Some a -> t.workers.(worker) <- Lookup a)
  | Lookup a -> (
      match Option.bind t.cache (fun c -> Cache.find c a.akey) with
      | Some verdict ->
          complete t ~worker a (Ok verdict) ~cache_hit:true;
          t.workers.(worker) <- Idle
      | None -> t.workers.(worker) <- Run a)
  | Run a -> start_attempt t ~worker a
  | Join (a, join) -> finish_attempt t ~worker a (join ())
  | Backoff (a, remaining) ->
      if remaining <= 0 then start_attempt t ~worker a
      else t.workers.(worker) <- Backoff (a, remaining - 1)

let busy t =
  Queue.depth t.queue > 0
  || Array.exists (function Idle -> false | _ -> true) t.workers

let tick t =
  Array.iteri (fun i _ -> step_worker t i) t.workers;
  Metrics.set_queue_depth t.metrics (Queue.depth t.queue)

let drain_completions t =
  let out = List.sort (fun a b -> compare a.seq b.seq) (List.rev t.completions) in
  t.completions <- [];
  out

let run_until_idle ?(max_ticks = 1_000_000) t =
  let ticks = ref 0 in
  while busy t && !ticks < max_ticks do
    tick t;
    incr ticks
  done;
  if busy t then failwith "Service.Scheduler.run_until_idle: tick budget exhausted";
  drain_completions t

let report t =
  let shards = Option.map Cache.shard_stats t.cache in
  let pool = Option.map (fun f -> f ()) t.cfg.pool_stats in
  Metrics.render ?shards ?pool t.metrics ~queue:(Queue.stats t.queue)
    ~cache:(cache_stats t)

let batch ?(config = default_config) jobs =
  let t = create config in
  let rejected = ref [] in
  let pending = ref jobs in
  let feed () =
    let continue = ref true in
    while !continue && !pending <> [] do
      match !pending with
      | [] -> ()
      | job :: rest -> (
          if Queue.depth t.queue >= Queue.capacity t.queue then continue := false
          else
            match submit t job with
            | Ok _ -> pending := rest
            | Error why ->
                (* Validation failure: record a rejection completion so
                   the batch result covers every input, in order. *)
                let seq = t.next_seq in
                t.next_seq <- seq + 1;
                rejected :=
                  {
                    job;
                    seq;
                    verdict = Error (Rejected why);
                    cache_hit = false;
                    attempts = 0;
                    latency_cycles = 0;
                    worker = -1;
                  }
                  :: !rejected;
                pending := rest)
    done
  in
  feed ();
  let ticks = ref 0 in
  while (busy t || !pending <> []) && !ticks < 10_000_000 do
    tick t;
    feed ();
    incr ticks
  done;
  if busy t || !pending <> [] then failwith "Service.Scheduler.batch: tick budget exhausted";
  List.sort (fun a b -> compare a.seq b.seq) (drain_completions t @ !rejected)

(* ------------------------------------------------------------------ *)
(* Multiplexed serve loop                                              *)
(* ------------------------------------------------------------------ *)

let serve t ~mux ~policies_for ?(max_ticks = 1_000_000) () =
  let module Mux = Channel.Session.Mux in
  let all = ref [] in
  let reply_verdict conn (c : completion) =
    let accepted, detail =
      match c.verdict with
      | Ok v -> (v.Cache.accepted, v.Cache.detail)
      | Error f -> (false, failure_to_string f)
    in
    Mux.reply mux ~id:conn (Channel.Wire.Verdict { accepted; detail })
  in
  let quiet = ref 0 and ticks = ref 0 in
  while !quiet < 2 && !ticks < max_ticks do
    let events = Mux.poll mux in
    List.iter
      (function
        | Mux.Payload { conn; payload } -> (
            let job = { client = conn; payload; policy_names = policies_for conn } in
            match submit t job with
            | Ok _ -> ()
            | Error why ->
                Mux.reply mux ~id:conn
                  (Channel.Wire.Verdict
                     { accepted = false; detail = "rejected at admission: " ^ why }))
        | Mux.Corrupt { conn; why } ->
            Mux.reply mux ~id:conn
              (Channel.Wire.Verdict { accepted = false; detail = "transfer corrupt: " ^ why })
        | Mux.Peer _ ->
            (* Fleet peer traffic belongs to the fleet node layer; a
               standalone serve loop has no peers and ignores it. *)
            ())
      events;
    tick t;
    let finished = drain_completions t in
    List.iter (fun c -> reply_verdict c.job.client c) finished;
    all := !all @ finished;
    if events = [] && (not (Mux.pending mux)) && not (busy t) then incr quiet
    else quiet := 0;
    incr ticks
  done;
  !all
