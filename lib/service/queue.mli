(** Bounded FIFO job queue with admission control.

    The service layer's front door: submissions beyond [capacity] are
    rejected immediately (bounded backpressure — the caller learns *now*
    that the service is saturated, instead of queueing unboundedly and
    timing out later). The queue is generic so tests can exercise the
    fairness and backpressure properties without building real jobs. *)

type 'a t

type stats = {
  depth : int;       (** jobs currently waiting *)
  peak_depth : int;  (** high-water mark since creation *)
  submitted : int;   (** total accepted *)
  rejected : int;    (** total turned away at admission *)
  capacity : int;
}

val create : capacity:int -> 'a t
(** [capacity] must be positive. *)

val capacity : 'a t -> int

val submit : 'a t -> 'a -> (unit, [ `Queue_full ]) result
(** FIFO admission: accepted jobs are dequeued in submission order. *)

val take : 'a t -> 'a option
(** Next job in FIFO order, or [None] when idle. *)

val depth : 'a t -> int

val stats : 'a t -> stats
