(** Content-addressed verdict cache.

    EnGarde's verdict is a pure function of three inputs: the ELF bytes,
    the agreed policy set, and the version of the reference libc hash
    database the library-linking policy compares against. The cache key
    binds all three — [SHA-256(ELF) x policy-set fingerprint x libc-db
    version] — so a provider upgrading its reference database (or a
    client renegotiating policies) can never be served a verdict
    computed under the old rules, while resubmissions of an
    already-judged binary skip disassembly and policy checking entirely
    ("verify once, attest the verdict"). Rejections are cached too: the
    same binary fails the same policies for the same reason.

    Eviction is LRU over a fixed capacity; hits, misses and evictions
    are counted for the metrics registry.

    The cache is lock-striped for the parallel scheduler: keys route by
    hash onto [shards] independent mutex-protected LRU shards, so
    concurrent pipelines contend only when they touch the same stripe.
    {!create} is the single-lock special case ([shards = 1]), under
    which behaviour is exactly the classic global-LRU cache. *)

type verdict = {
  accepted : bool;
  detail : string;              (** what the client is told *)
  measurement : string;         (** enclave measurement of the judging run *)
  programs_digest : string;
      (** negotiated policy-set digest of the judging run; [""] for
          runs without a negotiation step *)
  instructions : int;
  disassembly_cycles : int;     (** modelled cost of the original run *)
  policy_cycles : int;
  loading_cycles : int;
  findings : Engarde.Policy.finding list;
      (** structured violations of the judging run (empty on accept) —
          cached so a resubmission gets the full machine-readable
          rejection, not just the rendered detail string *)
}

val encode_verdict : verdict -> string
(** Serialize for storage/transmission; free-text fields are escaped so
    the form is line/tab-structured and round-trips exactly. *)

val encode_findings : Engarde.Policy.finding list -> string
(** The findings section of {!encode_verdict} alone — the canonical
    form the audit log digests. *)

val findings_digest : Engarde.Policy.finding list -> string
(** SHA-256 of {!encode_findings} (32 raw bytes). *)

val decode_verdict : string -> verdict option
(** Inverse of {!encode_verdict}; [None] on any malformed input. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

val key :
  payload:string ->
  policy_names:string list ->
  libc_db_version:string ->
  programs_digest:string ->
  string
(** The content address. The policy-set fingerprint is order- and
    duplicate-insensitive (policies form a set; [run_all] order does not
    change any verdict). [programs_digest] — the negotiated program-set
    digest — and the policy-DSL format version are folded in too, so
    verdicts computed under different programs (or an incompatible VM
    revision) never collide. *)

type t

val create : capacity:int -> t
(** A single-shard (single-lock, global-LRU) cache. [capacity] must be
    positive. *)

val sharded : shards:int -> capacity:int -> t
(** A lock-striped cache: [capacity] entries distributed over [shards]
    independent LRU shards (each at least 1 entry, so tiny capacities
    round up). Keys select their shard by hash; eviction is LRU within
    a shard. [sharded ~shards:1] is exactly {!create}. *)

val shard_count : t -> int

val find : t -> string -> verdict option
(** Counts a hit or a miss; a hit moves the entry to most-recently-used. *)

val add : t -> string -> verdict -> unit
(** Inserting at capacity evicts the least-recently-used entry.
    Re-inserting an existing key refreshes its value and recency. *)

val mem : t -> string -> bool
(** Pure membership probe: no counter or recency side effects. *)

val stats : t -> stats

val shard_stats : t -> stats array
(** Per-shard splits of {!stats}, in shard order (their field-wise sum
    is exactly {!stats}). Lets the metrics report show whether striping
    actually spreads load — and, in a fleet, which stripes the shared
    verdicts land in. *)

val export : t -> string
(** Serialize every entry, least recently used first within each shard,
    so that replaying {!add} on import reproduces the recency order
    (exactly, when exporter and importer have the same shard count; per
    stripe otherwise) and a smaller-capacity importer retains the
    hottest entries. The blob format does not depend on the shard
    count — single-lock and striped caches interchange state. Hit/miss
    counters are not part of the state. *)

val import : t -> string -> (int, string) result
(** Load an {!export} blob into [t] (normally freshly created); returns
    the number of entries inserted. Malformed input — wrong magic,
    truncation, an entry that does not decode — is an [Error] naming
    the problem; entries already inserted before the error remain. *)
