type verdict = {
  accepted : bool;
  detail : string;
  measurement : string;
  programs_digest : string;
  instructions : int;
  disassembly_cycles : int;
  policy_cycles : int;
  loading_cycles : int;
  findings : Engarde.Policy.finding list;
}

(* Tab/line-structured wire form. Every free-text field goes through
   [String.escaped], so no raw tab or newline survives inside a field. *)
let add_findings b findings =
  List.iter
    (fun (f : Engarde.Policy.finding) ->
      Printf.bprintf b "%s\t%d\t%s\t%s\n" (String.escaped f.Engarde.Policy.policy)
        f.Engarde.Policy.addr (String.escaped f.Engarde.Policy.code)
        (String.escaped f.Engarde.Policy.message))
    findings

let encode_findings findings =
  let b = Buffer.create 128 in
  add_findings b findings;
  Buffer.contents b

let findings_digest findings = Crypto.Sha256.digest (encode_findings findings)

let encode_verdict v =
  let b = Buffer.create 256 in
  Printf.bprintf b "%c\t%d\t%d\t%d\t%d\n"
    (if v.accepted then '1' else '0')
    v.instructions v.disassembly_cycles v.policy_cycles v.loading_cycles;
  Printf.bprintf b "%s\n" (String.escaped v.detail);
  Printf.bprintf b "%s\n" (String.escaped v.measurement);
  Printf.bprintf b "%s\n" (String.escaped v.programs_digest);
  add_findings b v.findings;
  Buffer.contents b

let decode_verdict s =
  let unescape x = try Some (Scanf.unescaped x) with Scanf.Scan_failure _ | Failure _ -> None in
  let ( let* ) = Option.bind in
  match String.split_on_char '\n' s with
  | header :: detail :: measurement :: programs :: rest -> begin
      match String.split_on_char '\t' header with
      | [ acc; insns; dis; pol; load ] ->
          let* accepted =
            match acc with "1" -> Some true | "0" -> Some false | _ -> None
          in
          let* instructions = int_of_string_opt insns in
          let* disassembly_cycles = int_of_string_opt dis in
          let* policy_cycles = int_of_string_opt pol in
          let* loading_cycles = int_of_string_opt load in
          let* detail = unescape detail in
          let* measurement = unescape measurement in
          let* programs_digest = unescape programs in
          let* findings =
            List.fold_left
              (fun acc line ->
                let* acc = acc in
                if line = "" then Some acc
                else
                  match String.split_on_char '\t' line with
                  | [ policy; addr; code; message ] ->
                      let* policy = unescape policy in
                      let* addr = int_of_string_opt addr in
                      let* code = unescape code in
                      let* message = unescape message in
                      Some (Engarde.Policy.finding ~policy ~addr ~code message :: acc)
                  | _ -> None)
              (Some []) rest
          in
          Some
            {
              accepted;
              detail;
              measurement;
              programs_digest;
              instructions;
              disassembly_cycles;
              policy_cycles;
              loading_cycles;
              findings = List.rev findings;
            }
      | _ -> None
    end
  | _ -> None

type stats = { hits : int; misses : int; evictions : int; size : int; capacity : int }

let key ~payload ~policy_names ~libc_db_version ~programs_digest =
  (* The two independent inner digests (multi-MB payload + policy-set
     fingerprint) ride one multi-buffer sweep; bit-identical to nested
     [digest] calls (see [Sha256.digest_many]). *)
  let payload_digest, fingerprint =
    match
      Crypto.Sha256.digest_many
        [ payload; String.concat "," (List.sort_uniq compare policy_names) ]
    with
    | [ p; f ] -> (p, f)
    | _ -> assert false
  in
  (* The program digest and the DSL format version both go in: a
     renegotiated program set, or the same set under an incompatible
     VM revision, can never be served a verdict computed under the
     old semantics. *)
  Crypto.Sha256.digest
    (payload_digest ^ "\x00" ^ fingerprint ^ "\x00" ^ libc_db_version
   ^ "\x00" ^ Policyvm.Encode.format_tag ^ "\x00" ^ programs_digest)

(* Doubly-linked LRU list threaded through the hash table's nodes:
   head = most recently used, tail = next eviction victim. Each shard
   is a complete single-lock LRU cache; the striped cache below routes
   keys onto shards by hash, so shards never share state and a shard's
   mutex is the only synchronization a lookup needs. *)
type node = {
  nkey : string;
  mutable value : verdict;
  mutable prev : node option;  (* towards head *)
  mutable next : node option;  (* towards tail *)
}

type shard = {
  lock : Mutex.t;
  pad : Bytes.t;
      (* spacer so adjacent shards' locks and hit/miss fields don't
         share a cache line (false-sharing hygiene for striped access) *)
  capacity : int;
  table : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type t = { shards : shard array }

let make_shard ~capacity =
  let lock = Mutex.create () in
  let pad = Bytes.create 64 in
  {
    lock;
    pad;
    capacity;
    table = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let sharded ~shards ~capacity =
  if shards <= 0 then invalid_arg "Service.Cache.sharded: shards must be positive";
  if capacity <= 0 then invalid_arg "Service.Cache.sharded: capacity must be positive";
  (* Distribute the budget; every shard holds at least one entry, so a
     tiny capacity with many shards rounds the total up rather than
     creating dead shards. *)
  let base = capacity / shards and extra = capacity mod shards in
  let shard_cap i = max 1 (base + if i < extra then 1 else 0) in
  { shards = Array.init shards (fun i -> make_shard ~capacity:(shard_cap i)) }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Service.Cache.create: capacity must be positive";
  sharded ~shards:1 ~capacity

let shard_count t = Array.length t.shards

let shard_of t k = t.shards.(Hashtbl.hash k mod Array.length t.shards)

let locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let unlink s n =
  (match n.prev with Some p -> p.next <- n.next | None -> s.head <- n.next);
  (match n.next with Some x -> x.prev <- n.prev | None -> s.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front s n =
  n.next <- s.head;
  (match s.head with Some h -> h.prev <- Some n | None -> s.tail <- Some n);
  s.head <- Some n

let touch s n =
  unlink s n;
  push_front s n

let find t k =
  let s = shard_of t k in
  locked s (fun () ->
      match Hashtbl.find_opt s.table k with
      | Some n ->
          s.hits <- s.hits + 1;
          touch s n;
          Some n.value
      | None ->
          s.misses <- s.misses + 1;
          None)

let mem t k =
  let s = shard_of t k in
  locked s (fun () -> Hashtbl.mem s.table k)

let evict_lru s =
  match s.tail with
  | None -> ()
  | Some victim ->
      unlink s victim;
      Hashtbl.remove s.table victim.nkey;
      s.evictions <- s.evictions + 1

let add t k v =
  let s = shard_of t k in
  locked s (fun () ->
      match Hashtbl.find_opt s.table k with
      | Some n ->
          n.value <- v;
          touch s n
      | None ->
          if Hashtbl.length s.table >= s.capacity then evict_lru s;
          let n = { nkey = k; value = v; prev = None; next = None } in
          Hashtbl.replace s.table k n;
          push_front s n)

let shard_stats t =
  Array.map
    (fun s ->
      locked s (fun () ->
          {
            hits = s.hits;
            misses = s.misses;
            evictions = s.evictions;
            size = Hashtbl.length s.table;
            capacity = s.capacity;
          }))
    t.shards

let stats t =
  Array.fold_left
    (fun (acc : stats) s ->
      locked s (fun () ->
          {
            hits = acc.hits + s.hits;
            misses = acc.misses + s.misses;
            evictions = acc.evictions + s.evictions;
            size = acc.size + Hashtbl.length s.table;
            capacity = acc.capacity + s.capacity;
          }))
    { hits = 0; misses = 0; evictions = 0; size = 0; capacity = 0 }
    t.shards

(* --- persistence (warm restart) ----------------------------------- *)

(* v2: verdicts carry the negotiated program digest. A v1 blob from an
   earlier release is rejected at import rather than silently reused
   under the new keying. *)
let export_magic = "EGCACHE2"
let stale_magic = "EGCACHE1"
let u32_be n = String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff))

let export t =
  let b = Buffer.create 1024 in
  Buffer.add_string b export_magic;
  let total =
    Array.fold_left
      (fun acc s -> locked s (fun () -> acc + Hashtbl.length s.table))
      0 t.shards
  in
  Buffer.add_string b (u32_be total);
  (* Tail (LRU) first within each shard: replaying [add] in this order
     reproduces each shard's recency ordering exactly (keys re-route to
     the same shard when the importer has the same shard count), and a
     smaller-capacity importer keeps the most recently used entries.
     The blob format is the same EGCACHE2 stream regardless of shard
     count, so single-lock and striped caches interchange state. *)
  Array.iter
    (fun s ->
      locked s (fun () ->
          let rec walk = function
            | None -> ()
            | Some n ->
                let v = encode_verdict n.value in
                Buffer.add_string b (u32_be (String.length n.nkey));
                Buffer.add_string b n.nkey;
                Buffer.add_string b (u32_be (String.length v));
                Buffer.add_string b v;
                walk n.prev
          in
          walk s.tail))
    t.shards;
  Buffer.contents b

let import t s =
  let pos = ref 0 in
  let len = String.length s in
  let take n =
    if !pos + n > len || n < 0 then None
    else begin
      let r = String.sub s !pos n in
      pos := !pos + n;
      Some r
    end
  in
  let u32 () =
    Option.map
      (fun b ->
        let v = ref 0 in
        String.iter (fun c -> v := (!v lsl 8) lor Char.code c) b;
        !v)
      (take 4)
  in
  let ( let* ) o f = match o with Some x -> f x | None -> Error "cache state truncated" in
  let* m = take 8 in
  if m = stale_magic then Error "stale cache state (format v1: no program digests)"
  else if m <> export_magic then Error "not a cache state blob"
  else
    let* n = u32 () in
    let rec load i =
      if i = n then if !pos = len then Ok n else Error "trailing bytes after cache state"
      else
        let* klen = u32 () in
        let* key = take klen in
        let* vlen = u32 () in
        let* enc = take vlen in
        match decode_verdict enc with
        | None -> Error (Printf.sprintf "cache entry %d does not decode" i)
        | Some v ->
            add t key v;
            load (i + 1)
    in
    load 0
