type verdict = {
  accepted : bool;
  detail : string;
  measurement : string;
  instructions : int;
  disassembly_cycles : int;
  policy_cycles : int;
  loading_cycles : int;
  findings : Engarde.Policy.finding list;
}

(* Tab/line-structured wire form. Every free-text field goes through
   [String.escaped], so no raw tab or newline survives inside a field. *)
let add_findings b findings =
  List.iter
    (fun (f : Engarde.Policy.finding) ->
      Printf.bprintf b "%s\t%d\t%s\t%s\n" (String.escaped f.Engarde.Policy.policy)
        f.Engarde.Policy.addr (String.escaped f.Engarde.Policy.code)
        (String.escaped f.Engarde.Policy.message))
    findings

let encode_findings findings =
  let b = Buffer.create 128 in
  add_findings b findings;
  Buffer.contents b

let findings_digest findings = Crypto.Sha256.digest (encode_findings findings)

let encode_verdict v =
  let b = Buffer.create 256 in
  Printf.bprintf b "%c\t%d\t%d\t%d\t%d\n"
    (if v.accepted then '1' else '0')
    v.instructions v.disassembly_cycles v.policy_cycles v.loading_cycles;
  Printf.bprintf b "%s\n" (String.escaped v.detail);
  Printf.bprintf b "%s\n" (String.escaped v.measurement);
  add_findings b v.findings;
  Buffer.contents b

let decode_verdict s =
  let unescape x = try Some (Scanf.unescaped x) with Scanf.Scan_failure _ | Failure _ -> None in
  let ( let* ) = Option.bind in
  match String.split_on_char '\n' s with
  | header :: detail :: measurement :: rest -> begin
      match String.split_on_char '\t' header with
      | [ acc; insns; dis; pol; load ] ->
          let* accepted =
            match acc with "1" -> Some true | "0" -> Some false | _ -> None
          in
          let* instructions = int_of_string_opt insns in
          let* disassembly_cycles = int_of_string_opt dis in
          let* policy_cycles = int_of_string_opt pol in
          let* loading_cycles = int_of_string_opt load in
          let* detail = unescape detail in
          let* measurement = unescape measurement in
          let* findings =
            List.fold_left
              (fun acc line ->
                let* acc = acc in
                if line = "" then Some acc
                else
                  match String.split_on_char '\t' line with
                  | [ policy; addr; code; message ] ->
                      let* policy = unescape policy in
                      let* addr = int_of_string_opt addr in
                      let* code = unescape code in
                      let* message = unescape message in
                      Some (Engarde.Policy.finding ~policy ~addr ~code message :: acc)
                  | _ -> None)
              (Some []) rest
          in
          Some
            {
              accepted;
              detail;
              measurement;
              instructions;
              disassembly_cycles;
              policy_cycles;
              loading_cycles;
              findings = List.rev findings;
            }
      | _ -> None
    end
  | _ -> None

type stats = { hits : int; misses : int; evictions : int; size : int; capacity : int }

let key ~payload ~policy_names ~libc_db_version =
  let fingerprint =
    String.concat "," (List.sort_uniq compare policy_names) |> Crypto.Sha256.digest
  in
  Crypto.Sha256.digest
    (Crypto.Sha256.digest payload ^ "\x00" ^ fingerprint ^ "\x00" ^ libc_db_version)

(* Doubly-linked LRU list threaded through the hash table's nodes:
   head = most recently used, tail = next eviction victim. *)
type node = {
  nkey : string;
  mutable value : verdict;
  mutable prev : node option;  (* towards head *)
  mutable next : node option;  (* towards tail *)
}

type t = {
  capacity : int;
  table : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Service.Cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  unlink t n;
  push_front t n

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      t.hits <- t.hits + 1;
      touch t n;
      Some n.value
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t k = Hashtbl.mem t.table k

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some victim ->
      unlink t victim;
      Hashtbl.remove t.table victim.nkey;
      t.evictions <- t.evictions + 1

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      n.value <- v;
      touch t n
  | None ->
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let n = { nkey = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k n;
      push_front t n

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    size = Hashtbl.length t.table;
    capacity = t.capacity;
  }

(* --- persistence (warm restart) ----------------------------------- *)

let export_magic = "EGCACHE1"
let u32_be n = String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff))

let export t =
  let b = Buffer.create 1024 in
  Buffer.add_string b export_magic;
  Buffer.add_string b (u32_be (Hashtbl.length t.table));
  (* Tail (LRU) first: replaying [add] in this order reproduces the
     recency ordering exactly, and a smaller-capacity importer keeps
     the most recently used entries. *)
  let rec walk = function
    | None -> ()
    | Some n ->
        let v = encode_verdict n.value in
        Buffer.add_string b (u32_be (String.length n.nkey));
        Buffer.add_string b n.nkey;
        Buffer.add_string b (u32_be (String.length v));
        Buffer.add_string b v;
        walk n.prev
  in
  walk t.tail;
  Buffer.contents b

let import t s =
  let pos = ref 0 in
  let len = String.length s in
  let take n =
    if !pos + n > len || n < 0 then None
    else begin
      let r = String.sub s !pos n in
      pos := !pos + n;
      Some r
    end
  in
  let u32 () =
    Option.map
      (fun b ->
        let v = ref 0 in
        String.iter (fun c -> v := (!v lsl 8) lor Char.code c) b;
        !v)
      (take 4)
  in
  let ( let* ) o f = match o with Some x -> f x | None -> Error "cache state truncated" in
  let* m = take 8 in
  if m <> export_magic then Error "not a cache state blob"
  else
    let* n = u32 () in
    let rec load i =
      if i = n then if !pos = len then Ok n else Error "trailing bytes after cache state"
      else
        let* klen = u32 () in
        let* key = take klen in
        let* vlen = u32 () in
        let* enc = take vlen in
        match decode_verdict enc with
        | None -> Error (Printf.sprintf "cache entry %d does not decode" i)
        | Some v ->
            add t key v;
            load (i + 1)
    in
    load 0
