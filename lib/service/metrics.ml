type job_counts = {
  submitted : int;
  rejected : int;
  completed : int;
  failed : int;
  retried : int;
  cache_hits : int;
}

type phase_totals = { disassembly : int; policy : int; loading : int; provisioning : int }

(* Roughly decade-spaced in modelled cycles: the fast benchmarks land in
   the 10^7-10^9 range, full-size nginx runs in the 10^9-10^10 range. *)
let latency_buckets =
  [| 1_000_000; 10_000_000; 100_000_000; 1_000_000_000; 10_000_000_000 |]

type t = {
  mutable submitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable failed : int;
  mutable retried : int;
  mutable cache_hits : int;
  mutable disassembly : int;
  mutable policy : int;
  mutable loading : int;
  mutable provisioning : int;
  mutable runs : int;  (* real pipeline executions, incl. retries *)
  buckets : int array; (* latency histogram; last slot is +Inf *)
  mutable latency_sum : int;
  mutable latency_count : int;
  mutable queue_depth : int;
  mutable queue_depth_peak : int;
  mutable audit_appends : int;
  mutable audit_checkpoints : int;
  mutable audit_log_size : int;
}

let create () =
  {
    submitted = 0;
    rejected = 0;
    completed = 0;
    failed = 0;
    retried = 0;
    cache_hits = 0;
    disassembly = 0;
    policy = 0;
    loading = 0;
    provisioning = 0;
    runs = 0;
    buckets = Array.make (Array.length latency_buckets + 1) 0;
    latency_sum = 0;
    latency_count = 0;
    queue_depth = 0;
    queue_depth_peak = 0;
    audit_appends = 0;
    audit_checkpoints = 0;
    audit_log_size = 0;
  }

let job_submitted t = t.submitted <- t.submitted + 1
let job_rejected t = t.rejected <- t.rejected + 1

let job_completed t ~cache_hit =
  t.completed <- t.completed + 1;
  if cache_hit then t.cache_hits <- t.cache_hits + 1

let job_failed t = t.failed <- t.failed + 1
let job_retried t = t.retried <- t.retried + 1

let observe_run t ~disassembly ~policy ~loading ~provisioning =
  t.disassembly <- t.disassembly + disassembly;
  t.policy <- t.policy + policy;
  t.loading <- t.loading + loading;
  t.provisioning <- t.provisioning + provisioning;
  t.runs <- t.runs + 1

let observe_latency t ~cycles =
  let rec slot i =
    if i >= Array.length latency_buckets || cycles <= latency_buckets.(i) then i
    else slot (i + 1)
  in
  let i = slot 0 in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.latency_sum <- t.latency_sum + cycles;
  t.latency_count <- t.latency_count + 1

let set_queue_depth t d =
  t.queue_depth <- d;
  t.queue_depth_peak <- max t.queue_depth_peak d

let audit_appended t ~log_size =
  t.audit_appends <- t.audit_appends + 1;
  t.audit_log_size <- log_size

let audit_checkpointed t = t.audit_checkpoints <- t.audit_checkpoints + 1
let set_audit_log_size t n = t.audit_log_size <- n

let job_counts t =
  {
    submitted = t.submitted;
    rejected = t.rejected;
    completed = t.completed;
    failed = t.failed;
    retried = t.retried;
    cache_hits = t.cache_hits;
  }

let phase_totals t =
  {
    disassembly = t.disassembly;
    policy = t.policy;
    loading = t.loading;
    provisioning = t.provisioning;
  }

let render t ~queue ~cache =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# engarde service metrics (cycles are modelled; see lib/sgx/perf.mli)";
  line "jobs_submitted_total %d" t.submitted;
  line "jobs_rejected_total %d" t.rejected;
  line "jobs_completed_total %d" t.completed;
  line "jobs_failed_total %d" t.failed;
  line "jobs_retried_total %d" t.retried;
  line "pipeline_runs_total %d" t.runs;
  line "queue_depth %d" t.queue_depth;
  line "queue_depth_peak %d" (max t.queue_depth_peak queue.Queue.peak_depth);
  line "queue_capacity %d" queue.Queue.capacity;
  line "queue_submitted_total %d" queue.Queue.submitted;
  line "queue_rejected_total %d" queue.Queue.rejected;
  (match cache with
  | None -> line "cache_enabled 0"
  | Some (c : Cache.stats) ->
      line "cache_enabled 1";
      line "cache_size %d" c.Cache.size;
      line "cache_capacity %d" c.Cache.capacity;
      line "cache_hits_total %d" c.Cache.hits;
      line "cache_misses_total %d" c.Cache.misses;
      line "cache_evictions_total %d" c.Cache.evictions);
  line "audit_appends_total %d" t.audit_appends;
  line "audit_checkpoints_total %d" t.audit_checkpoints;
  line "audit_log_size %d" t.audit_log_size;
  line "phase_cycles_total{phase=\"disassembly\"} %d" t.disassembly;
  line "phase_cycles_total{phase=\"policy\"} %d" t.policy;
  line "phase_cycles_total{phase=\"loading\"} %d" t.loading;
  line "phase_cycles_total{phase=\"provisioning\"} %d" t.provisioning;
  (* Cumulative, as Prometheus histograms are. *)
  let cum = ref 0 in
  Array.iteri
    (fun i count ->
      cum := !cum + count;
      let le =
        if i < Array.length latency_buckets then string_of_int latency_buckets.(i)
        else "+Inf"
      in
      line "job_latency_cycles_bucket{le=\"%s\"} %d" le !cum)
    t.buckets;
  line "job_latency_cycles_sum %d" t.latency_sum;
  line "job_latency_cycles_count %d" t.latency_count;
  Buffer.contents b
