type job_counts = {
  submitted : int;
  rejected : int;
  completed : int;
  failed : int;
  retried : int;
  cache_hits : int;
}

type phase_totals = { disassembly : int; policy : int; loading : int; provisioning : int }

(* Roughly decade-spaced in modelled cycles: the fast benchmarks land in
   the 10^7-10^9 range, full-size nginx runs in the 10^9-10^10 range. *)
let latency_buckets =
  [| 1_000_000; 10_000_000; 100_000_000; 1_000_000_000; 10_000_000_000 |]

(* Every counter is an [Atomic.t]: the registry is written from the
   scheduler thread and read (rendered) from anywhere, and with the
   parallel dispatch path pipelines may one day record directly. Atomics
   make each sample individually coherent; [render] is a point-in-time
   snapshot, not a transaction across samples — the usual Prometheus
   contract. *)
type t = {
  submitted : int Atomic.t;
  rejected : int Atomic.t;
  completed : int Atomic.t;
  failed : int Atomic.t;
  retried : int Atomic.t;
  cache_hits : int Atomic.t;
  disassembly : int Atomic.t;
  policy : int Atomic.t;
  callgraph : int Atomic.t;
  summary : int Atomic.t;
  loading : int Atomic.t;
  provisioning : int Atomic.t;
  runs : int Atomic.t;          (* real pipeline executions, incl. retries *)
  buckets : int Atomic.t array; (* latency histogram; last slot is +Inf *)
  latency_sum : int Atomic.t;
  latency_count : int Atomic.t;
  queue_depth : int Atomic.t;
  queue_depth_peak : int Atomic.t;
  audit_appends : int Atomic.t;
  audit_checkpoints : int Atomic.t;
  audit_log_size : int Atomic.t;
  (* streaming-channel telemetry *)
  records_received : int Atomic.t;
  record_bytes : int Atomic.t;
  in_flight_peak : int Atomic.t;
  epoch_updates : int Atomic.t;
  handshakes : int Atomic.t;
  resumptions : int Atomic.t;
  resumption_fallbacks : int Atomic.t;
  spec_hashes : int Atomic.t;
  spec_adopted : int Atomic.t;
  (* 0-RTT ticket stash (scheduler-side LRU) *)
  ticket_stash_size : int Atomic.t;
  ticket_evictions : int Atomic.t;
  (* fleet peer protocol *)
  fleet_pushes : int Atomic.t;
  fleet_imports : int Atomic.t;
  fleet_rejected_quote : int Atomic.t;
  fleet_rejected_binding : int Atomic.t;
  fleet_rejected_proof : int Atomic.t;
  fleet_rejected_replay : int Atomic.t;
  fleet_rejected_quarantined : int Atomic.t;
  fleet_rejected_malformed : int Atomic.t;
  pads : Bytes.t array;
      (* keeps the cache-line spacers between hot counters alive *)
}

(* OCaml 5.1 has no [Atomic.make_contended] (5.2+), so hot counters are
   spaced with a retained 64-byte spacer block allocated right after
   each one. Minor-heap allocation is sequential and promotion is
   order-preserving, so the spacer keeps two adjacent counters from
   sharing a cache line — the false-sharing hygiene the work-stealing
   pool's per-domain writers need. *)
let contended pads v =
  let a = Atomic.make v in
  pads := Bytes.create 64 :: !pads;
  a

let create () =
  let pads = ref [] in
  let hot v = contended pads v in
  (* Hot counters are bound in sequence (not inside the record literal,
     whose field evaluation order is unspecified) so each spacer really
     sits between consecutive counter allocations. *)
  let submitted = hot 0 in
  let rejected = hot 0 in
  let completed = hot 0 in
  let failed = hot 0 in
  let retried = hot 0 in
  let cache_hits = hot 0 in
  let disassembly = hot 0 in
  let policy = hot 0 in
  let callgraph = hot 0 in
  let summary = hot 0 in
  let loading = hot 0 in
  let provisioning = hot 0 in
  let runs = hot 0 in
  let buckets = Array.init (Array.length latency_buckets + 1) (fun _ -> hot 0) in
  let latency_sum = hot 0 in
  let latency_count = hot 0 in
  let queue_depth = hot 0 in
  let queue_depth_peak = hot 0 in
  let pads = Array.of_list !pads in
  {
    submitted;
    rejected;
    completed;
    failed;
    retried;
    cache_hits;
    disassembly;
    policy;
    callgraph;
    summary;
    loading;
    provisioning;
    runs;
    buckets;
    latency_sum;
    latency_count;
    queue_depth;
    queue_depth_peak;
    audit_appends = Atomic.make 0;
    audit_checkpoints = Atomic.make 0;
    audit_log_size = Atomic.make 0;
    records_received = Atomic.make 0;
    record_bytes = Atomic.make 0;
    in_flight_peak = Atomic.make 0;
    epoch_updates = Atomic.make 0;
    handshakes = Atomic.make 0;
    resumptions = Atomic.make 0;
    resumption_fallbacks = Atomic.make 0;
    spec_hashes = Atomic.make 0;
    spec_adopted = Atomic.make 0;
    ticket_stash_size = Atomic.make 0;
    ticket_evictions = Atomic.make 0;
    fleet_pushes = Atomic.make 0;
    fleet_imports = Atomic.make 0;
    fleet_rejected_quote = Atomic.make 0;
    fleet_rejected_binding = Atomic.make 0;
    fleet_rejected_proof = Atomic.make 0;
    fleet_rejected_replay = Atomic.make 0;
    fleet_rejected_quarantined = Atomic.make 0;
    fleet_rejected_malformed = Atomic.make 0;
    pads;
  }

let incr c = ignore (Atomic.fetch_and_add c 1)
let addto c n = ignore (Atomic.fetch_and_add c n)

let job_submitted t = incr t.submitted
let job_rejected t = incr t.rejected

let job_completed t ~cache_hit =
  incr t.completed;
  if cache_hit then incr t.cache_hits

let job_failed t = incr t.failed
let job_retried t = incr t.retried

let observe_run t ~disassembly ~policy ~callgraph ~summary ~loading ~provisioning =
  addto t.disassembly disassembly;
  addto t.policy policy;
  addto t.callgraph callgraph;
  addto t.summary summary;
  addto t.loading loading;
  addto t.provisioning provisioning;
  incr t.runs

let observe_latency t ~cycles =
  let rec slot i =
    if i >= Array.length latency_buckets || cycles <= latency_buckets.(i) then i
    else slot (i + 1)
  in
  incr t.buckets.(slot 0);
  addto t.latency_sum cycles;
  incr t.latency_count

(* Monotone max via CAS: a concurrent larger peak never regresses. *)
let rec raise_peak c candidate =
  let seen = Atomic.get c in
  if candidate > seen && not (Atomic.compare_and_set c seen candidate) then
    raise_peak c candidate

let set_queue_depth t d =
  Atomic.set t.queue_depth d;
  raise_peak t.queue_depth_peak d

let audit_appended t ~log_size =
  incr t.audit_appends;
  Atomic.set t.audit_log_size log_size

let audit_checkpointed t = incr t.audit_checkpoints
let set_audit_log_size t n = Atomic.set t.audit_log_size n

(* One streaming transfer's worth of channel telemetry (see
   [Engarde.Provision.channel_stats]). Legacy-channel runs observe
   nothing here; full handshakes on the streaming channel count under
   [handshakes], 0-RTT rides under [resumptions], and a resumption that
   degraded to a full handshake counts under both [handshakes] and
   [resumption_fallbacks]. *)
let observe_channel t ~records ~bytes ~in_flight ~epoch_updates ~resumed ~fallback ~spec_hashes
    ~spec_adopted =
  addto t.records_received records;
  addto t.record_bytes bytes;
  raise_peak t.in_flight_peak in_flight;
  addto t.epoch_updates epoch_updates;
  if resumed then incr t.resumptions else incr t.handshakes;
  if fallback then incr t.resumption_fallbacks;
  addto t.spec_hashes spec_hashes;
  addto t.spec_adopted spec_adopted

let set_ticket_stash t n = Atomic.set t.ticket_stash_size n
let ticket_evicted t = incr t.ticket_evictions

type fleet_reject = Quote | Binding | Proof | Replay | Quarantined | Malformed

let fleet_reject_to_string = function
  | Quote -> "quote"
  | Binding -> "binding"
  | Proof -> "proof"
  | Replay -> "replay"
  | Quarantined -> "quarantined"
  | Malformed -> "malformed"

let fleet_pushed t = incr t.fleet_pushes
let fleet_imported t = incr t.fleet_imports

let fleet_rejected t = function
  | Quote -> incr t.fleet_rejected_quote
  | Binding -> incr t.fleet_rejected_binding
  | Proof -> incr t.fleet_rejected_proof
  | Replay -> incr t.fleet_rejected_replay
  | Quarantined -> incr t.fleet_rejected_quarantined
  | Malformed -> incr t.fleet_rejected_malformed

let fleet_rejections t =
  [
    (Quote, Atomic.get t.fleet_rejected_quote);
    (Binding, Atomic.get t.fleet_rejected_binding);
    (Proof, Atomic.get t.fleet_rejected_proof);
    (Replay, Atomic.get t.fleet_rejected_replay);
    (Quarantined, Atomic.get t.fleet_rejected_quarantined);
    (Malformed, Atomic.get t.fleet_rejected_malformed);
  ]

let job_counts t =
  {
    submitted = Atomic.get t.submitted;
    rejected = Atomic.get t.rejected;
    completed = Atomic.get t.completed;
    failed = Atomic.get t.failed;
    retried = Atomic.get t.retried;
    cache_hits = Atomic.get t.cache_hits;
  }

let phase_totals t =
  {
    disassembly = Atomic.get t.disassembly;
    policy = Atomic.get t.policy;
    loading = Atomic.get t.loading;
    provisioning = Atomic.get t.provisioning;
  }

let render ?shards ?pool t ~queue ~cache =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# engarde service metrics (cycles are modelled; see lib/sgx/perf.mli)";
  (match pool with
  | None -> ()
  | Some (p : Pool.stats) ->
      line "pool_steals_total %d" p.Pool.steals;
      line "pool_parks_total %d" p.Pool.parks);
  line "jobs_submitted_total %d" (Atomic.get t.submitted);
  line "jobs_rejected_total %d" (Atomic.get t.rejected);
  line "jobs_completed_total %d" (Atomic.get t.completed);
  line "jobs_failed_total %d" (Atomic.get t.failed);
  line "jobs_retried_total %d" (Atomic.get t.retried);
  line "pipeline_runs_total %d" (Atomic.get t.runs);
  line "queue_depth %d" (Atomic.get t.queue_depth);
  line "queue_depth_peak %d" (max (Atomic.get t.queue_depth_peak) queue.Queue.peak_depth);
  line "queue_capacity %d" queue.Queue.capacity;
  line "queue_submitted_total %d" queue.Queue.submitted;
  line "queue_rejected_total %d" queue.Queue.rejected;
  (match cache with
  | None -> line "cache_enabled 0"
  | Some (c : Cache.stats) ->
      line "cache_enabled 1";
      line "cache_size %d" c.Cache.size;
      line "cache_capacity %d" c.Cache.capacity;
      line "cache_hits_total %d" c.Cache.hits;
      line "cache_misses_total %d" c.Cache.misses;
      line "cache_evictions_total %d" c.Cache.evictions;
      (* Per-shard splits only when striping is actually in play — a
         single-shard cache would just repeat the aggregates. *)
      match shards with
      | Some per when Array.length per > 1 ->
          Array.iteri
            (fun i (s : Cache.stats) ->
              line "cache_shard_size{shard=\"%d\"} %d" i s.Cache.size;
              line "cache_shard_hits_total{shard=\"%d\"} %d" i s.Cache.hits;
              line "cache_shard_misses_total{shard=\"%d\"} %d" i s.Cache.misses;
              line "cache_shard_evictions_total{shard=\"%d\"} %d" i s.Cache.evictions)
            per
      | _ -> ());
  line "ticket_stash_size %d" (Atomic.get t.ticket_stash_size);
  line "ticket_stash_evictions_total %d" (Atomic.get t.ticket_evictions);
  line "fleet_verdicts_pushed_total %d" (Atomic.get t.fleet_pushes);
  line "fleet_verdicts_imported_total %d" (Atomic.get t.fleet_imports);
  List.iter
    (fun (r, n) -> line "fleet_rejected_%s_total %d" (fleet_reject_to_string r) n)
    (fleet_rejections t);
  line "audit_appends_total %d" (Atomic.get t.audit_appends);
  line "audit_checkpoints_total %d" (Atomic.get t.audit_checkpoints);
  line "audit_log_size %d" (Atomic.get t.audit_log_size);
  line "channel_records_received_total %d" (Atomic.get t.records_received);
  line "channel_record_bytes_total %d" (Atomic.get t.record_bytes);
  line "channel_in_flight_bytes_peak %d" (Atomic.get t.in_flight_peak);
  line "channel_epoch_updates_total %d" (Atomic.get t.epoch_updates);
  line "channel_handshakes_total %d" (Atomic.get t.handshakes);
  line "channel_resumptions_total %d" (Atomic.get t.resumptions);
  line "channel_resumption_fallbacks_total %d" (Atomic.get t.resumption_fallbacks);
  line "channel_speculative_hashes_total %d" (Atomic.get t.spec_hashes);
  line "channel_speculative_adopted_total %d" (Atomic.get t.spec_adopted);
  line "phase_cycles_total{phase=\"disassembly\"} %d" (Atomic.get t.disassembly);
  line "phase_cycles_total{phase=\"policy\"} %d" (Atomic.get t.policy);
  line "analysis_callgraph_cycles_total %d" (Atomic.get t.callgraph);
  line "analysis_summary_cycles_total %d" (Atomic.get t.summary);
  line "phase_cycles_total{phase=\"loading\"} %d" (Atomic.get t.loading);
  line "phase_cycles_total{phase=\"provisioning\"} %d" (Atomic.get t.provisioning);
  (* Cumulative, as Prometheus histograms are. *)
  let cum = ref 0 in
  Array.iteri
    (fun i count ->
      cum := !cum + Atomic.get count;
      let le =
        if i < Array.length latency_buckets then string_of_int latency_buckets.(i)
        else "+Inf"
      in
      line "job_latency_cycles_bucket{le=\"%s\"} %d" le !cum)
    t.buckets;
  line "job_latency_cycles_sum %d" (Atomic.get t.latency_sum);
  line "job_latency_cycles_count %d" (Atomic.get t.latency_count);
  Buffer.contents b
