type 'a t = {
  capacity : int;
  items : 'a Stdlib.Queue.t;
  mutable peak_depth : int;
  mutable submitted : int;
  mutable rejected : int;
}

type stats = {
  depth : int;
  peak_depth : int;
  submitted : int;
  rejected : int;
  capacity : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Service.Queue.create: capacity must be positive";
  {
    capacity;
    items = Stdlib.Queue.create ();
    peak_depth = 0;
    submitted = 0;
    rejected = 0;
  }

let capacity (t : 'a t) = t.capacity
let depth t = Stdlib.Queue.length t.items

let submit t job =
  if depth t >= t.capacity then begin
    t.rejected <- t.rejected + 1;
    Error `Queue_full
  end
  else begin
    Stdlib.Queue.add job t.items;
    t.submitted <- t.submitted + 1;
    t.peak_depth <- max t.peak_depth (depth t);
    Ok ()
  end

let take t = if Stdlib.Queue.is_empty t.items then None else Some (Stdlib.Queue.pop t.items)

let stats t =
  {
    depth = depth t;
    peak_depth = t.peak_depth;
    submitted = t.submitted;
    rejected = t.rejected;
    capacity = t.capacity;
  }
