(** x86-64 disassembler for the {!Insn} subset, modelled on the NaCl
    64-bit disassembler the paper builds on: prefix parsing, one- and
    two-byte opcode tables, ModRM/SIB decoding, and per-instruction
    metadata (number of prefix, opcode and displacement bytes — the same
    metadata the paper says NaCl's tables produce). *)

type meta = {
  len : int;        (** total instruction length in bytes *)
  n_prefix : int;   (** legacy + REX prefix bytes *)
  n_opcode : int;   (** opcode bytes (1 or 2) *)
  n_disp : int;     (** displacement bytes (0, 1 or 4) *)
  n_imm : int;      (** immediate bytes (0, 1 or 4) *)
}

type decoded = {
  insn : Insn.t;
  off : int;        (** offset of the instruction within the buffer *)
  meta : meta;
}

type error =
  | Truncated of int            (** ran off the end at this offset *)
  | Unknown_opcode of int * int (** offset, first undecodable opcode byte *)
  | Invalid of int * string     (** offset, reason *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Off-heap byte buffer (structural alias for [Elf64.Buf.Big.t] —
    declared locally so this library keeps zero dependencies). *)

type src = Str of string | Big of bigstring
(** Instruction byte source. [Big] is the zero-copy path: the decoder
    reads the mapped section in place, so parallel domains share one
    off-heap buffer instead of copying strings through the GC heap. *)

val src_length : src -> int

val decode_one : string -> pos:int -> (decoded, error) result
(** Decode the instruction starting at byte [pos]. *)

val decode_all : ?pos:int -> ?len:int -> string -> (decoded list, error) result
(** Linear sweep over [len] bytes from [pos] (defaults: whole string).
    Stops at the first undecodable byte. *)

val decode_one_src : src -> pos:int -> (decoded, error) result
(** {!decode_one} over either byte source. Byte-identical results for
    identical bytes, regardless of representation. *)

val decode_all_src : ?pos:int -> ?len:int -> src -> (decoded list, error) result
(** {!decode_all} over either byte source. *)
