type violation =
  | Decode_error of Decoder.error
  | Bundle_overlap of { off : int; len : int }
  | Bad_branch_target of { off : int; target : int }
  | Unreachable of { off : int }

let pp_violation fmt = function
  | Decode_error e -> Decoder.pp_error fmt e
  | Bundle_overlap { off; len } ->
      Format.fprintf fmt "instruction at 0x%x (%d bytes) crosses a 32-byte bundle boundary" off len
  | Bad_branch_target { off; target } ->
      Format.fprintf fmt "branch at 0x%x targets 0x%x, not an instruction start" off target
  | Unreachable { off } -> Format.fprintf fmt "instruction at 0x%x is unreachable" off

let violation_to_string v = Format.asprintf "%a" pp_violation v

let bundle_size = 32

let branch_target (d : Decoder.decoded) =
  match (d.insn.mnem, d.insn.ops) with
  | (CALL | JMP | JCC _), [ Rel rel ] -> Some (d.off + d.meta.len + rel)
  | _ -> None

let validate_src ?(roots = []) ?(check_reachability = true) code =
  match Decoder.decode_all_src code with
  | Error e -> Error (Decode_error e)
  | Ok insns ->
      let insns = Array.of_list insns in
      let n = Array.length insns in
      (* Map from offset to instruction index, for target validation. *)
      let index_of_off = Hashtbl.create (2 * n) in
      Array.iteri (fun i (d : Decoder.decoded) -> Hashtbl.replace index_of_off d.off i) insns;
      let rec check_bundles i =
        if i >= n then None
        else begin
          let d = insns.(i) in
          let first = d.Decoder.off / bundle_size in
          let last = (d.Decoder.off + d.Decoder.meta.len - 1) / bundle_size in
          if first <> last then Some (Bundle_overlap { off = d.Decoder.off; len = d.Decoder.meta.len })
          else check_bundles (i + 1)
        end
      in
      let rec check_targets i =
        if i >= n then None
        else begin
          let d = insns.(i) in
          match branch_target d with
          | Some target when not (Hashtbl.mem index_of_off target) ->
              Some (Bad_branch_target { off = d.Decoder.off; target })
          | Some _ | None -> check_targets (i + 1)
        end
      in
      let check_reach () =
        let reached = Array.make n false in
        let queue = Queue.create () in
        let push_off off =
          match Hashtbl.find_opt index_of_off off with
          | Some i when not reached.(i) ->
              reached.(i) <- true;
              Queue.add i queue
          | Some _ | None -> ()
        in
        if n > 0 then push_off insns.(0).Decoder.off;
        List.iter push_off roots;
        while not (Queue.is_empty queue) do
          let i = Queue.pop queue in
          let d = insns.(i) in
          (match branch_target d with Some t -> push_off t | None -> ());
          let falls_through =
            match d.insn.mnem with
            | JMP | JMP_IND | RET | UD2 -> false
            | MOV | LEA | ADD | SUB | AND | OR | XOR | CMP | TEST | IMUL
            | SHL | SHR | PUSH | POP | CALL | CALL_IND | JCC _ | NOP -> true
          in
          if falls_through && i + 1 < n then begin
            if not reached.(i + 1) then begin
              reached.(i + 1) <- true;
              Queue.add (i + 1) queue
            end
          end
        done;
        (* Alignment padding (nops between a function's terminal ret/jmp
           and the next 32-byte-aligned function entry) is conventional
           dead code; only non-nop unreachable instructions are flagged. *)
        let is_nop (d : Decoder.decoded) =
          match d.insn.mnem with NOP -> true | _ -> false
        in
        let rec first_unreached i =
          if i >= n then None
          else if (not reached.(i)) && not (is_nop insns.(i)) then
            Some (Unreachable { off = insns.(i).Decoder.off })
          else first_unreached (i + 1)
        in
        first_unreached 0
      in
      let violation =
        match check_bundles 0 with
        | Some v -> Some v
        | None -> (
            match check_targets 0 with
            | Some v -> Some v
            | None -> if check_reachability then check_reach () else None)
      in
      (match violation with Some v -> Error v | None -> Ok insns)

let validate ?roots ?check_reachability code =
  validate_src ?roots ?check_reachability (Decoder.Str code)
