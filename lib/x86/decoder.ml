open Insn

type meta = {
  len : int;
  n_prefix : int;
  n_opcode : int;
  n_disp : int;
  n_imm : int;
}

type decoded = { insn : Insn.t; off : int; meta : meta }

type error =
  | Truncated of int
  | Unknown_opcode of int * int
  | Invalid of int * string

let pp_error fmt = function
  | Truncated off -> Format.fprintf fmt "truncated instruction at offset 0x%x" off
  | Unknown_opcode (off, b) -> Format.fprintf fmt "unknown opcode 0x%02x at offset 0x%x" b off
  | Invalid (off, why) -> Format.fprintf fmt "invalid instruction at offset 0x%x: %s" off why

let error_to_string e = Format.asprintf "%a" pp_error e

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Instruction bytes come either as an ordinary string or as an
   off-heap [bigstring] view of the mapped section — the zero-copy path
   parallel workers decode through without dragging multi-MB strings
   across the shared major heap. *)
type src = Str of string | Big of bigstring

let src_length = function
  | Str s -> String.length s
  | Big b -> Bigarray.Array1.dim b

(* Decoding cursor over an immutable byte source. *)
type cursor = {
  code : src;
  code_len : int;  (* cached [src_length code] *)
  start : int;     (* offset of the instruction being decoded *)
  mutable pos : int;
  mutable seg_fs : bool;
  mutable rex : int;           (* 0 when absent *)
  mutable n_prefix : int;
  mutable n_opcode : int;
  mutable n_disp : int;
  mutable n_imm : int;
}

exception Fail of error

let peek c =
  if c.pos >= c.code_len then raise (Fail (Truncated c.start));
  match c.code with
  | Str s -> Char.code (String.unsafe_get s c.pos)
  | Big b -> Char.code (Bigarray.Array1.unsafe_get b c.pos)

let next c =
  let b = peek c in
  c.pos <- c.pos + 1;
  b

let sign8 v = if v >= 0x80 then v - 0x100 else v

let read_disp8 c =
  c.n_disp <- c.n_disp + 1;
  sign8 (next c)

let read_i32 c =
  let b0 = next c in
  let b1 = next c in
  let b2 = next c in
  let b3 = next c in
  let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  if v land 0x8000_0000 <> 0 then v - (1 lsl 32) else v

let read_disp32 c =
  c.n_disp <- c.n_disp + 4;
  read_i32 c

let read_imm8 c =
  c.n_imm <- c.n_imm + 1;
  sign8 (next c)

let read_imm32 c =
  c.n_imm <- c.n_imm + 4;
  read_i32 c

let rex_w c = c.rex land 8 <> 0
let rex_r c = c.rex land 4 <> 0
let rex_x c = c.rex land 2 <> 0
let rex_b c = c.rex land 1 <> 0

let width_of c = if rex_w c then W64 else W32

(* Decoded r/m field: either a register or a memory operand. *)
type rm = Rm_reg of Reg.t | Rm_mem of mem | Rm_rip of int

let decode_modrm c =
  let modrm = next c in
  let md = modrm lsr 6 in
  let reg = ((modrm lsr 3) land 7) lor (if rex_r c then 8 else 0) in
  let rm_low = modrm land 7 in
  let rm =
    if md = 3 then Rm_reg (Reg.of_number (rm_low lor if rex_b c then 8 else 0))
    else if rm_low = 4 then begin
      (* SIB byte follows. *)
      let sib = next c in
      let scale = 1 lsl (sib lsr 6) in
      let index_num = ((sib lsr 3) land 7) lor (if rex_x c then 8 else 0) in
      let base_low = sib land 7 in
      let index = if index_num = 4 then None else Some (Reg.of_number index_num, scale) in
      if base_low = 5 && md = 0 then begin
        let disp = read_disp32 c in
        Rm_mem { seg_fs = c.seg_fs; base = None; index; disp }
      end
      else begin
        let base = Reg.of_number (base_low lor if rex_b c then 8 else 0) in
        let disp =
          match md with 0 -> 0 | 1 -> read_disp8 c | 2 -> read_disp32 c | _ -> assert false
        in
        Rm_mem { seg_fs = c.seg_fs; base = Some base; index; disp }
      end
    end
    else if rm_low = 5 && md = 0 then Rm_rip (read_disp32 c)
    else begin
      let base = Reg.of_number (rm_low lor if rex_b c then 8 else 0) in
      let disp =
        match md with 0 -> 0 | 1 -> read_disp8 c | 2 -> read_disp32 c | _ -> assert false
      in
      Rm_mem { seg_fs = c.seg_fs; base = Some base; index = None; disp }
    end
  in
  (reg, rm)

(* RIP displacements are encoded relative to the next instruction, and
   the raw disp32 read during ModRM decode was read before trailing
   immediates; the [Insn] IR stores it exactly as encoded (from the end
   of the instruction), which coincides because none of our RIP-using
   instructions carry immediates. *)

let alu_of_mr = function
  | 0x01 -> ADD | 0x09 -> OR | 0x21 -> AND | 0x29 -> SUB | 0x31 -> XOR | 0x39 -> CMP
  | _ -> assert false

let alu_of_rm = function
  | 0x03 -> ADD | 0x0b -> OR | 0x23 -> AND | 0x2b -> SUB | 0x33 -> XOR | 0x3b -> CMP
  | _ -> assert false

let alu_of_ext c off = function
  | 0 -> ADD | 1 -> OR | 4 -> AND | 5 -> SUB | 6 -> XOR | 7 -> CMP
  | n ->
      ignore c;
      raise (Fail (Invalid (off, Printf.sprintf "unsupported group-1 extension /%d" n)))

let cond_of_code off = function
  | 4 -> E | 5 -> NE | 0xc -> L | 0xe -> LE | 0xf -> G | 0xd -> GE
  | 2 -> B | 6 -> BE | 7 -> A | 3 -> AE | 8 -> S | 9 -> NS
  | n -> raise (Fail (Invalid (off, Printf.sprintf "unsupported condition code %x" n)))

let decode_insn c : Insn.t =
  (* Legacy prefixes we accept: 0x64 (FS segment). Then optional REX. *)
  let rec prefixes () =
    match peek c with
    | 0x64 ->
        c.seg_fs <- true;
        c.n_prefix <- c.n_prefix + 1;
        ignore (next c);
        prefixes ()
    | b when b >= 0x40 && b <= 0x4f ->
        c.rex <- b;
        c.n_prefix <- c.n_prefix + 1;
        ignore (next c);
        (* REX must be the last prefix: opcode follows. *)
        ()
    | _ -> ()
  in
  prefixes ();
  let op = next c in
  c.n_opcode <- 1;
  let w = width_of c in
  match op with
  | 0x0f -> begin
      let op2 = next c in
      c.n_opcode <- 2;
      match op2 with
      | 0xaf ->
          let reg, rm = decode_modrm c in
          let dst = Reg.of_number reg in
          (match rm with
          | Rm_reg src -> { mnem = IMUL; ops = [ Reg (w, src); Reg (w, dst) ] }
          | Rm_mem m -> { mnem = IMUL; ops = [ Mem (w, m); Reg (w, dst) ] }
          | Rm_rip d -> { mnem = IMUL; ops = [ Rip d; Reg (w, dst) ] })
      | 0x1f ->
          let _reg, rm = decode_modrm c in
          (match rm with
          | Rm_mem m -> { mnem = NOP; ops = [ Mem (w, m) ] }
          | Rm_reg _ | Rm_rip _ ->
              raise (Fail (Invalid (c.start, "nop 0f1f with non-memory operand"))))
      | 0x0b -> ud2
      | b when b >= 0x80 && b <= 0x8f ->
          let cond = cond_of_code c.start (b land 0xf) in
          jcc cond (read_imm32 c)
      | b -> raise (Fail (Unknown_opcode (c.start, (0x0f lsl 8) lor b)))
    end
  | 0x01 | 0x09 | 0x21 | 0x29 | 0x31 | 0x39 ->
      let mnem = alu_of_mr op in
      let reg, rm = decode_modrm c in
      let src = Reg.of_number reg in
      (match rm with
      | Rm_reg dst -> { mnem; ops = [ Reg (w, src); Reg (w, dst) ] }
      | Rm_mem m -> { mnem; ops = [ Reg (w, src); Mem (w, m) ] }
      | Rm_rip d -> { mnem; ops = [ Reg (w, src); Rip d ] })
  | 0x03 | 0x0b | 0x23 | 0x2b | 0x33 | 0x3b ->
      let mnem = alu_of_rm op in
      let reg, rm = decode_modrm c in
      let dst = Reg.of_number reg in
      (match rm with
      | Rm_reg src -> { mnem; ops = [ Reg (w, src); Reg (w, dst) ] }
      | Rm_mem m -> { mnem; ops = [ Mem (w, m); Reg (w, dst) ] }
      | Rm_rip d -> { mnem; ops = [ Rip d; Reg (w, dst) ] })
  | 0x85 ->
      let reg, rm = decode_modrm c in
      let src = Reg.of_number reg in
      (match rm with
      | Rm_reg dst -> { mnem = TEST; ops = [ Reg (w, src); Reg (w, dst) ] }
      | Rm_mem m -> { mnem = TEST; ops = [ Reg (w, src); Mem (w, m) ] }
      | Rm_rip d -> { mnem = TEST; ops = [ Reg (w, src); Rip d ] })
  | 0x81 | 0x83 ->
      let ext, rm = decode_modrm c in
      let mnem = alu_of_ext c c.start (ext land 7) in
      let imm = if op = 0x83 then read_imm8 c else read_imm32 c in
      (match rm with
      | Rm_reg dst -> { mnem; ops = [ Imm imm; Reg (w, dst) ] }
      | Rm_mem m -> { mnem; ops = [ Imm imm; Mem (w, m) ] }
      | Rm_rip d -> { mnem; ops = [ Imm imm; Rip d ] })
  | 0x89 ->
      let reg, rm = decode_modrm c in
      let src = Reg.of_number reg in
      (match rm with
      | Rm_reg dst -> { mnem = MOV; ops = [ Reg (w, src); Reg (w, dst) ] }
      | Rm_mem m -> { mnem = MOV; ops = [ Reg (w, src); Mem (w, m) ] }
      | Rm_rip d -> { mnem = MOV; ops = [ Reg (w, src); Rip d ] })
  | 0x8b ->
      let reg, rm = decode_modrm c in
      let dst = Reg.of_number reg in
      (match rm with
      | Rm_reg src -> { mnem = MOV; ops = [ Reg (w, src); Reg (w, dst) ] }
      | Rm_mem m -> { mnem = MOV; ops = [ Mem (w, m); Reg (w, dst) ] }
      | Rm_rip d -> { mnem = MOV; ops = [ Rip d; Reg (w, dst) ] })
  | 0x8d ->
      let reg, rm = decode_modrm c in
      let dst = Reg.of_number reg in
      (match rm with
      | Rm_rip d -> { mnem = LEA; ops = [ Rip d; Reg (w, dst) ] }
      | Rm_mem m -> { mnem = LEA; ops = [ Mem (w, m); Reg (w, dst) ] }
      | Rm_reg _ -> raise (Fail (Invalid (c.start, "lea with register source"))))
  | 0xc7 ->
      let ext, rm = decode_modrm c in
      if ext land 7 <> 0 then raise (Fail (Invalid (c.start, "c7 with extension <> /0")));
      let imm = read_imm32 c in
      (match rm with
      | Rm_reg dst -> { mnem = MOV; ops = [ Imm imm; Reg (w, dst) ] }
      | Rm_mem m -> { mnem = MOV; ops = [ Imm imm; Mem (w, m) ] }
      | Rm_rip d -> { mnem = MOV; ops = [ Imm imm; Rip d ] })
  | 0xc1 ->
      let ext, rm = decode_modrm c in
      let mnem =
        match ext land 7 with
        | 4 -> SHL
        | 5 -> SHR
        | n -> raise (Fail (Invalid (c.start, Printf.sprintf "shift group extension /%d" n)))
      in
      let imm = read_imm8 c in
      (match rm with
      | Rm_reg r -> { mnem; ops = [ Imm imm; Reg (w, r) ] }
      | Rm_mem _ | Rm_rip _ -> raise (Fail (Invalid (c.start, "shift on memory unsupported"))))
  | b when b >= 0x50 && b <= 0x57 ->
      push (Reg.of_number ((b land 7) lor if rex_b c then 8 else 0))
  | b when b >= 0x58 && b <= 0x5f ->
      pop (Reg.of_number ((b land 7) lor if rex_b c then 8 else 0))
  | 0xe8 -> call (read_imm32 c)
  | 0xe9 -> jmp (read_imm32 c)
  | 0xeb -> jmp (read_imm8 c)
  | b when b >= 0x70 && b <= 0x7f ->
      let cond = cond_of_code c.start (b land 0xf) in
      jcc cond (read_imm8 c)
  | 0xff -> begin
      let ext, rm = decode_modrm c in
      match (ext land 7, rm) with
      | 2, Rm_reg r -> call_ind r
      | 4, Rm_reg r -> jmp_ind r
      | 2, (Rm_mem _ | Rm_rip _) | 4, (Rm_mem _ | Rm_rip _) ->
          raise (Fail (Invalid (c.start, "indirect branch through memory unsupported")))
      | n, _ -> raise (Fail (Invalid (c.start, Printf.sprintf "ff group extension /%d" n)))
    end
  | 0xc3 -> ret
  | 0x90 -> nop
  | b -> raise (Fail (Unknown_opcode (c.start, b)))

let max_insn_len = 15

let decode_one_src code ~pos =
  let code_len = src_length code in
  if pos < 0 || pos >= code_len then Error (Truncated pos)
  else begin
    let c =
      { code; code_len; start = pos; pos; seg_fs = false; rex = 0;
        n_prefix = 0; n_opcode = 0; n_disp = 0; n_imm = 0 }
    in
    match decode_insn c with
    | insn ->
        let len = c.pos - pos in
        if len > max_insn_len then Error (Invalid (pos, "instruction longer than 15 bytes"))
        else
          Ok
            { insn;
              off = pos;
              meta = { len; n_prefix = c.n_prefix; n_opcode = c.n_opcode;
                       n_disp = c.n_disp; n_imm = c.n_imm } }
    | exception Fail e -> Error e
  end

let decode_all_src ?(pos = 0) ?len code =
  let stop = match len with None -> src_length code | Some l -> pos + l in
  let rec go acc pos =
    if pos >= stop then Ok (List.rev acc)
    else
      match decode_one_src code ~pos with
      | Error e -> Error e
      | Ok d ->
          if pos + d.meta.len > stop then Error (Truncated pos)
          else go (d :: acc) (pos + d.meta.len)
  in
  go [] pos

let decode_one code ~pos = decode_one_src (Str code) ~pos
let decode_all ?pos ?len code = decode_all_src ?pos ?len (Str code)
