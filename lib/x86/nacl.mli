(** NaCl-style code validation, as used by EnGarde for reliable
    disassembly (paper, Section 3): instructions must not straddle a
    32-byte bundle boundary, every direct control transfer must target an
    instruction start, and all instructions must be reachable from the
    given roots (entry point and function entries). *)

type violation =
  | Decode_error of Decoder.error
  | Bundle_overlap of { off : int; len : int }
      (** instruction at [off] crosses a bundle boundary *)
  | Bad_branch_target of { off : int; target : int }
      (** direct branch at [off] targets a non-instruction offset *)
  | Unreachable of { off : int }
      (** instruction not reachable from any root *)

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

val bundle_size : int
(** 32, as in NaCl and the paper. *)

val branch_target : Decoder.decoded -> int option
(** Target offset of a direct CALL/JMP/Jcc, if this is one. *)

val validate :
  ?roots:int list ->
  ?check_reachability:bool ->
  string ->
  (Decoder.decoded array, violation) result
(** Linear-sweep disassembly plus the three NaCl checks. [roots] are
    additional reachability roots besides offset 0 (function entries and
    jump-table entries reached through masked indirect calls).
    [check_reachability] defaults to [true]. On success, returns the full
    instruction buffer in code order. *)

val validate_src :
  ?roots:int list ->
  ?check_reachability:bool ->
  Decoder.src ->
  (Decoder.decoded array, violation) result
(** {!validate} over either byte source; the [Big] case validates the
    off-heap buffer in place (zero-copy). *)
