(** The four built-in policies, recompiled as DSL programs.

    Each program is a line-for-line transcription of its native module
    ([Policy_libc], [Policy_stack] flow mode, [Policy_ifcc] flow mode,
    [Policy_lint]): same event traversal order, same [Charge]
    placement, same finding codes and format strings. The differential
    suite (test + [make policy-oracle]) holds verdicts, findings and
    modelled cycles bit-identical against the natives on every
    workload; the natives stay in-tree as that oracle.

    Inputs that natively arrive as [make] arguments travel as embedded
    tables instead, so they are part of the measured canonical blob:
    the libc hash db (table 0 of [libc]) and the stack-protector
    exemption list (table 0 of [stack]). *)

val libc : db:(string * string) list -> Prog.t
val stack : exempt:string list -> Prog.t
val ifcc : unit -> Prog.t
val lint : unit -> Prog.t

val all : db:(string * string) list -> exempt:string list -> (string * Prog.t) list
(** [(short-name, program)] in the canonical order [libc; stack; ifcc;
    lint] — the short names are the scheduler's policy names. *)
