(** The charged policy-program interpreter.

    Runs one {!Prog.t} against a {!Policy.context}. Two cost streams
    are kept strictly apart:

    - {b Modelled policy cycles} go to [ctx.perf] (and [ctx.cfg_perf]
      through the shared CFG store): [Charge] statements spend the
      {!Prog.costc} constants, and charged fact primitives
      ([P_function_hash], [P_fact_before], [P_has_cfg]) charge exactly
      what the native modules' calls charge. A program transcribing a
      native policy therefore reproduces its modelled cycles bit for
      bit — the differential suite holds the builtins to that.
    - {b Interpreter overhead} ({!Costmodel.vm_step} per node
      evaluated, plus blob-decoding cost in {!of_blob}) goes to the
      separate [vm_perf] counter, so it can be reported and bounded
      (the bench smoke gate) without perturbing verdict-relevant
      accounting.

    Every node evaluation also burns one unit of fuel; running dry,
    any dynamic type mismatch, any out-of-bounds fact access, and any
    malformed format string abort the run with an {!error} — the
    interpreter never raises and never reads outside the facts it is
    given, whatever program the negotiation admitted. *)

open Engarde

type error =
  | Fuel_exhausted
  | Type_error of string
  | Bounds of string
  | Arity of string
  | Bad_format of string

val error_to_string : error -> string

type outcome = {
  verdict : (Policy.verdict, error) result;
  fuel_left : int;
  vm_nodes : int;  (** nodes evaluated = fuel spent *)
}

val default_fuel : Policy.context -> int
(** {!Costmodel.vm_fuel_base} + per-entry scaling for the context's
    buffer. *)

val run :
  ?fuel:int ->
  ?vm_perf:Sgx.Perf.t ->
  ?tables:(string, string) Hashtbl.t array ->
  Prog.t ->
  Policy.context ->
  outcome
(** One interpretation. [tables] lets a caller reuse prebuilt lookup
    tables across runs (as {!policy} does); by default they are built
    from the program's embedded entries. *)

val policy : ?fuel:int -> ?vm_perf:Sgx.Perf.t -> Prog.t -> Policy.t
(** Package a program as an ordinary {!Policy.t}. A VM error becomes a
    single ["policy-vm-error"] violation — a misbehaving agreed
    program rejects the binary instead of wedging the service. *)

val of_blob :
  ?fuel:int -> ?vm_perf:Sgx.Perf.t -> string -> (Policy.t, string) result
(** Decode a canonical blob ({!Encode.decode}) and package it. Charges
    {!Costmodel.vm_decode_per_byte} per blob byte to [vm_perf] when
    given. *)
