(** Canonical serialized form of policy programs.

    The blob — not the in-memory tree — is what client and provider
    negotiate over and what gets hashed into the enclave measurement,
    so encoding must be canonical (one byte string per program) and
    decoding must be strict: unknown tags, out-of-range slots, oversize
    tables, over-cap charge repeats, truncation and trailing bytes are
    all hard errors. [decode] never raises, whatever the input. *)

val format_tag : string
(** Blob magic, ["EGPVM1"]. Doubles as the DSL version tag folded into
    {!Cache.key}: bumping the format invalidates cached verdicts. *)

val version : int

val to_bytes : Prog.t -> string

val decode : string -> (Prog.t, string) result
(** Strict inverse of {!to_bytes}: [decode (to_bytes p) = Ok p], and
    every [Ok] result satisfies the {!Prog} static limits. *)

val digest : Prog.t -> string
(** SHA-256 (raw 32 bytes) of the canonical blob. *)

val digest_hex : Prog.t -> string
