open Engarde
open Prog

type error =
  | Fuel_exhausted
  | Type_error of string
  | Bounds of string
  | Arity of string
  | Bad_format of string

let error_to_string = function
  | Fuel_exhausted -> "fuel exhausted"
  | Type_error w -> "type error: " ^ w
  | Bounds w -> "out-of-range access: " ^ w
  | Arity w -> "bad primitive arity: " ^ w
  | Bad_format w -> "bad format string: " ^ w

exception Stop of error
exception Brk

type value =
  | VInt of int
  | VBool of bool
  | VStr of string
  | VReg of X86.Reg.t
  | VNone
  | VSome of value
  | VPair of value * value
  | VList of value list

type state = {
  ctx : Policy.context;
  prog : Prog.t;
  tables : (string, string) Hashtbl.t array;
  frame : value array;
  mutable fuel : int;
  mutable steps : int;
  mutable findings : Policy.finding list; (* newest first *)
  sols : (int, (Cfg.t * Dataflow.Regs.t Dataflow.solution) option) Hashtbl.t;
      (* per-run dataflow memo, mirroring the native policies'
         per-check [solutions] tables (the CFG itself is shared across
         policies through [Policy.cfg_of]) *)
  san_sols : (int, (Cfg.t * int Dataflow.solution) option) Hashtbl.t;
      (* per-run must-init memo for the sanitize primitives, mirroring
         the native sanitize policy's per-check [sols] table (function
         summaries are shared across policies through
         [Policy.summary_of]) *)
}

let stop e = raise (Stop e)
let type_err what = stop (Type_error what)

let int_of = function VInt v -> v | _ -> type_err "expected int"
let bool_of = function VBool v -> v | _ -> type_err "expected bool"
let str_of = function VStr v -> v | _ -> type_err "expected string"
let reg_of = function VReg v -> v | _ -> type_err "expected register"
let list_of = function VList v -> v | _ -> type_err "expected list"

let vopt = function None -> VNone | Some v -> VSome v
let vint v = VInt v
let vbool v = VBool v

(* ---- fact interface ------------------------------------------------ *)

let entry st i =
  let entries = st.ctx.Policy.buffer.Disasm.entries in
  if i < 0 || i >= Array.length entries then stop (Bounds "instruction entry")
  else entries.(i)

let func st fi =
  let fns = st.ctx.Policy.index.Analysis.functions in
  if fi < 0 || fi >= Array.length fns then stop (Bounds "function") else fns.(fi)

let direct_call st i =
  let dcs = st.ctx.Policy.index.Analysis.direct_calls in
  if i < 0 || i >= Array.length dcs then stop (Bounds "direct call") else dcs.(i)

let indirect_call st i =
  let ics = st.ctx.Policy.index.Analysis.indirect_calls in
  if i < 0 || i >= Array.length ics then stop (Bounds "indirect call") else ics.(i)

let indirect_jump st i =
  let ijs = st.ctx.Policy.index.Analysis.indirect_jumps in
  if i < 0 || i >= Array.length ijs then stop (Bounds "indirect jump") else ijs.(i)

(* [Analysis.function_containing], but yielding the function's index so
   programs can feed it back into the CFG and dataflow primitives. *)
let function_index_containing st addr =
  let fns = st.ctx.Policy.index.Analysis.functions in
  let n = Array.length fns in
  let rec go lo hi =
    if lo >= hi then
      if lo > 0 then begin
        let f = fns.(lo - 1) in
        if addr >= f.Analysis.fn_addr && addr < f.Analysis.fn_end then Some (lo - 1)
        else None
      end
      else None
    else begin
      let mid = (lo + hi) / 2 in
      if fns.(mid).Analysis.fn_addr <= addr then go (mid + 1) hi else go lo mid
    end
  in
  go 0 n

let cfg_of st fi =
  (* charged through [Policy.cfg_of]'s shared memo, exactly as the
     native flow-mode policies build their CFGs *)
  Policy.cfg_of st.ctx (func st fi)

let cfg_exn st fi =
  match cfg_of st fi with
  | Some cfg -> cfg
  | None -> stop (Bounds "no CFG for function")

let block st fi k =
  let cfg = cfg_exn st fi in
  if k < 0 || k >= Array.length cfg.Cfg.blocks then stop (Bounds "basic block")
  else (cfg, cfg.Cfg.blocks.(k))

let solution_for st fi =
  let fn = func st fi in
  match Hashtbl.find_opt st.sols fn.Analysis.fn_addr with
  | Some s -> s
  | None ->
      let s =
        match Policy.cfg_of st.ctx fn with
        | None -> None
        | Some cfg ->
            Some
              ( cfg,
                Dataflow.solve st.ctx.Policy.perf st.ctx.Policy.buffer cfg
                  Dataflow.Regs.problem )
      in
      Hashtbl.replace st.sols fn.Analysis.fn_addr s;
      s

(* The sanitize primitives' must-init dataflow: same callee resolution,
   same perf, same memo discipline as the native sanitize policy, so VM
   and native runs charge bit-identical modelled cycles. *)
let san_callee st ~addr = Policy.summary_of st.ctx ~addr

let san_problem st =
  Summary.must_init_problem ~perf:st.ctx.Policy.perf ~callee:(fun ~addr ->
      san_callee st ~addr)

let san_solution_for st fi =
  let fn = func st fi in
  match Hashtbl.find_opt st.san_sols fn.Analysis.fn_addr with
  | Some s -> s
  | None ->
      let s =
        match Policy.cfg_of st.ctx fn with
        | None -> None
        | Some cfg ->
            Some
              ( cfg,
                Dataflow.solve st.ctx.Policy.perf st.ctx.Policy.buffer cfg
                  (san_problem st) )
      in
      Hashtbl.replace st.san_sols fn.Analysis.fn_addr s;
      s

let fact_before st fi index r =
  match solution_for st fi with
  | None -> VNone
  | Some (cfg, sol) -> (
      match
        Dataflow.fact_at st.ctx.Policy.perf st.ctx.Policy.buffer cfg
          Dataflow.Regs.problem sol ~index
      with
      | None -> VNone
      | Some facts ->
          let kind, a, b =
            match Dataflow.Regs.get facts r with
            | Dataflow.Regs.Top -> (kind_top, 0, 0)
            | Dataflow.Regs.Addr a -> (kind_addr, a, 0)
            | Dataflow.Regs.Diff (p, b) -> (kind_diff, p, b)
            | Dataflow.Regs.Masked (p, b, _) -> (kind_masked, p, b)
            | Dataflow.Regs.Target (base, tgt) -> (kind_target, base, tgt)
          in
          VSome (VPair (VInt kind, VPair (VInt a, VInt b))))

let vreg_pair (r1, v) = VPair (VReg r1, VInt v)
let vregs_pair (r1, r2) = VPair (VReg r1, VReg r2)

let prim_eval st p (args : value list) =
  let idx = st.ctx.Policy.index in
  let buffer = st.ctx.Policy.buffer in
  let arity_err () = stop (Arity "primitive") in
  let a1 () = match args with [ v ] -> v | _ -> arity_err () in
  let a2 () = match args with [ v1; v2 ] -> (v1, v2) | _ -> arity_err () in
  let a3 () = match args with [ v1; v2; v3 ] -> (v1, v2, v3) | _ -> arity_err () in
  let a0 () = match args with [] -> () | _ -> arity_err () in
  match p with
  | P_num_entries ->
      a0 ();
      vint (Array.length buffer.Disasm.entries)
  | P_entry_addr -> vint (entry st (int_of (a1 ()))).Disasm.addr
  | P_code_base ->
      a0 ();
      vint buffer.Disasm.base
  | P_code_end ->
      a0 ();
      vint (buffer.Disasm.base + Disasm.code_length buffer.Disasm.code)
  | P_index_of_addr ->
      vopt (Option.map vint (Disasm.index_of_addr buffer (int_of (a1 ()))))
  | P_is_ret -> vbool ((entry st (int_of (a1 ()))).Disasm.insn.X86.Insn.mnem = X86.Insn.RET)
  | P_can_fall_through ->
      vbool (Patterns.can_fall_through (entry st (int_of (a1 ()))).Disasm.insn)
  | P_branch_target -> vopt (Option.map vint (Patterns.branch_target (entry st (int_of (a1 ())))))
  | P_sole_reg_operand ->
      vopt
        (Option.map (fun r -> VReg r)
           (Patterns.sole_reg_operand (entry st (int_of (a1 ()))).Disasm.insn))
  | P_stack_store ->
      vopt
        (Option.map (fun r -> VReg r)
           (Patterns.stack_store (entry st (int_of (a1 ()))).Disasm.insn))
  | P_canary_load_into ->
      let r, i = a2 () in
      vbool (Patterns.canary_load_into (reg_of r) (entry st (int_of i)).Disasm.insn)
  | P_defines ->
      let r, i = a2 () in
      vbool (Patterns.defines (reg_of r) (entry st (int_of i)).Disasm.insn)
  | P_canary_check_site ->
      let i, lo, hi = a3 () in
      let i = int_of i and lo = int_of lo and hi = int_of hi in
      ignore (entry st i);
      if lo < 0 || hi > Array.length buffer.Disasm.entries then
        stop (Bounds "canary probe range")
      else
        vopt
          (Option.map vint
             (Patterns.canary_check_site buffer st.ctx.Policy.symbols ~lo ~hi i))
  | P_lea_rip_target ->
      vopt (Option.map vreg_pair (Patterns.lea_rip_target (entry st (int_of (a1 ())))))
  | P_ifcc_sub32 ->
      vopt (Option.map vregs_pair (Patterns.ifcc_sub32 (entry st (int_of (a1 ()))).Disasm.insn))
  | P_ifcc_and64 ->
      vopt
        (Option.map
           (fun (m, d) -> VPair (VInt m, VReg d))
           (Patterns.ifcc_and64 (entry st (int_of (a1 ()))).Disasm.insn))
  | P_ifcc_add64 ->
      vopt (Option.map vregs_pair (Patterns.ifcc_add64 (entry st (int_of (a1 ()))).Disasm.insn))
  | P_num_functions ->
      a0 ();
      vint (Array.length idx.Analysis.functions)
  | P_fn_addr -> vint (func st (int_of (a1 ()))).Analysis.fn_addr
  | P_fn_name -> VStr (func st (int_of (a1 ()))).Analysis.fn_name
  | P_fn_slice ->
      vopt
        (Option.map
           (fun (lo, hi) -> VPair (VInt lo, VInt hi))
           (func st (int_of (a1 ()))).Analysis.fn_slice)
  | P_function_containing ->
      vopt (Option.map vint (function_index_containing st (int_of (a1 ()))))
  | P_is_function_start ->
      vbool (Symhash.is_function_start st.ctx.Policy.symbols (int_of (a1 ())))
  | P_num_direct_calls ->
      a0 ();
      vint (Array.length idx.Analysis.direct_calls)
  | P_dc_addr -> vint (direct_call st (int_of (a1 ()))).Analysis.dc_addr
  | P_dc_target -> vint (direct_call st (int_of (a1 ()))).Analysis.dc_target
  | P_dc_name ->
      vopt (Option.map (fun s -> VStr s) (direct_call st (int_of (a1 ()))).Analysis.dc_name)
  | P_num_indirect_calls ->
      a0 ();
      vint (Array.length idx.Analysis.indirect_calls)
  | P_ic_addr -> vint (indirect_call st (int_of (a1 ()))).Analysis.ic_addr
  | P_ic_index -> vint (indirect_call st (int_of (a1 ()))).Analysis.ic_index
  | P_ic_reg -> VReg (indirect_call st (int_of (a1 ()))).Analysis.ic_reg
  | P_ic_window_len ->
      vint (Array.length (indirect_call st (int_of (a1 ()))).Analysis.ic_window)
  | P_ic_window ->
      let i, k = a2 () in
      let w = (indirect_call st (int_of i)).Analysis.ic_window in
      let k = int_of k in
      (* window slot [k] counts back from the call: slot 1 is the
         nearest preceding entry, matching the paper's i-k indexing *)
      if k < 1 || k > Array.length w then stop (Bounds "window slot") else vint w.(k - 1)
  | P_num_indirect_jumps ->
      a0 ();
      vint (Array.length idx.Analysis.indirect_jumps)
  | P_ij_index -> vint (fst (indirect_jump st (int_of (a1 ()))))
  | P_ij_addr -> vint (snd (indirect_jump st (int_of (a1 ()))))
  | P_in_table -> vbool (Analysis.in_table idx (int_of (a1 ())))
  | P_function_hash ->
      vopt
        (Option.map
           (fun h -> VStr h)
           (Analysis.function_hash idx ~perf:st.ctx.Policy.perf ~addr:(int_of (a1 ()))))
  | P_table_lookup ->
      let t, k = a2 () in
      let t = int_of t in
      if t < 0 || t >= Array.length st.tables then stop (Bounds "table id")
      else vopt (Option.map (fun v -> VStr v) (Hashtbl.find_opt st.tables.(t) (str_of k)))
  | P_branch_target_within ->
      let lo, hi = a2 () in
      vbool (Analysis.branch_target_within idx ~lo:(int_of lo) ~hi:(int_of hi))
  | P_has_cfg -> vbool (cfg_of st (int_of (a1 ())) <> None)
  | P_num_blocks -> vint (Array.length (cfg_exn st (int_of (a1 ()))).Cfg.blocks)
  | P_block_lo ->
      let fi, k = a2 () in
      vint (snd (block st (int_of fi) (int_of k))).Cfg.b_lo
  | P_block_hi ->
      let fi, k = a2 () in
      vint (snd (block st (int_of fi) (int_of k))).Cfg.b_hi
  | P_block_addr ->
      let fi, k = a2 () in
      vint (snd (block st (int_of fi) (int_of k))).Cfg.b_addr
  | P_block_padding ->
      let fi, k = a2 () in
      vbool (snd (block st (int_of fi) (int_of k))).Cfg.b_padding
  | P_block_reachable ->
      let fi, k = a2 () in
      let cfg, _ = block st (int_of fi) (int_of k) in
      vbool cfg.Cfg.reachable.(int_of k)
  | P_block_of_index ->
      let fi, i = a2 () in
      vopt (Option.map vint (Cfg.block_of_index (cfg_exn st (int_of fi)) (int_of i)))
  | P_dominates ->
      let fi, a, b = a3 () in
      let cfg = cfg_exn st (int_of fi) in
      let nb = Array.length cfg.Cfg.blocks in
      let a = int_of a and b = int_of b in
      if a < 0 || a >= nb || b < 0 || b >= nb then stop (Bounds "dominates")
      else vbool (Cfg.dominates cfg a b)
  | P_fact_before ->
      let fi, i, r = a3 () in
      let i = int_of i in
      ignore (entry st i);
      fact_before st (int_of fi) i (reg_of r)
  | P_fn_is_entry ->
      vbool (Policy_sanitize.is_entry_name (func st (int_of (a1 ()))).Analysis.fn_name)
  | P_san_reads ->
      vint
        (Summary.effective_reads
           ~callee:(fun ~addr -> san_callee st ~addr)
           (entry st (int_of (a1 ()))))
  | P_san_fact -> (
      let fi, i = a2 () in
      let i = int_of i in
      ignore (entry st i);
      match san_solution_for st (int_of fi) with
      | None -> VNone
      | Some (cfg, sol) ->
          vopt
            (Option.map vint
               (Dataflow.fact_at st.ctx.Policy.perf st.ctx.Policy.buffer cfg
                  (san_problem st) sol ~index:i)))

(* ---- findings ------------------------------------------------------ *)

let format_finding fmt args =
  let b = Buffer.create (String.length fmt + 32) in
  let args = ref args in
  let next () =
    match !args with
    | [] -> stop (Bad_format "missing argument")
    | v :: rest ->
        args := rest;
        v
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    let ch = fmt.[!i] in
    if ch <> '%' then Buffer.add_char b ch
    else begin
      incr i;
      if !i >= n then stop (Bad_format "trailing %");
      (match fmt.[!i] with
      | 'x' -> Buffer.add_string b (Printf.sprintf "%x" (int_of (next ())))
      | 'd' -> Buffer.add_string b (Printf.sprintf "%d" (int_of (next ())))
      | 's' -> Buffer.add_string b (str_of (next ()))
      | '%' -> Buffer.add_char b '%'
      | _ -> stop (Bad_format "unknown directive"))
    end;
    incr i
  done;
  if !args <> [] then stop (Bad_format "unused arguments");
  Buffer.contents b

(* ---- interpreter --------------------------------------------------- *)

let tick st =
  st.steps <- st.steps + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel < 0 then stop Fuel_exhausted

let truthy = bool_of

let rec eval st (e : expr) : value =
  tick st;
  match e with
  | Const (C_int v) -> VInt v
  | Const (C_bool v) -> VBool v
  | Const (C_str s) -> VStr s
  | Const C_none -> VNone
  | Const C_nil -> VList []
  | Var slot -> st.frame.(slot)
  | Un (op, e) -> (
      let v = eval st e in
      match op with
      | U_not -> VBool (not (truthy v))
      | U_is_some -> VBool (match v with VSome _ -> true | _ -> false)
      | U_fst -> ( match v with VPair (a, _) -> a | _ -> type_err "expected pair")
      | U_snd -> ( match v with VPair (_, b) -> b | _ -> type_err "expected pair"))
  | Bin (op, e1, e2) -> (
      let v1 = eval st e1 in
      let v2 = eval st e2 in
      match op with
      | B_add -> VInt (int_of v1 + int_of v2)
      | B_sub -> VInt (int_of v1 - int_of v2)
      | B_mul -> VInt (int_of v1 * int_of v2)
      | B_land -> VInt (int_of v1 land int_of v2)
      | B_min -> VInt (min (int_of v1) (int_of v2))
      | B_eq -> (
          match (v1, v2) with
          | VInt a, VInt b -> VBool (a = b)
          | VBool a, VBool b -> VBool (a = b)
          | VStr a, VStr b -> VBool (String.equal a b)
          | _ -> type_err "expected comparable values")
      | B_lt -> VBool (int_of v1 < int_of v2)
      | B_le -> VBool (int_of v1 <= int_of v2)
      | B_reg_eq -> VBool (X86.Reg.equal (reg_of v1) (reg_of v2)))
  | And (e1, e2) -> if truthy (eval st e1) then VBool (truthy (eval st e2)) else VBool false
  | Or (e1, e2) -> if truthy (eval st e1) then VBool true else VBool (truthy (eval st e2))
  | Get e -> (
      match eval st e with VSome v -> v | _ -> type_err "Get of empty option")
  | Prim (p, args) -> prim_eval st p (List.map (eval st) args)

let rec exec st (s : stmt) : unit =
  tick st;
  match s with
  | Nop -> ()
  | Seq ss -> List.iter (exec st) ss
  | Charge (c, times) ->
      Sgx.Perf.count_cycles st.ctx.Policy.perf (cost_cycles c * times)
  | Set (slot, e) -> st.frame.(slot) <- eval st e
  | If (cond, t, f) -> if truthy (eval st cond) then exec st t else exec st f
  | For (slot, lo, hi, body) -> begin
      let lo = int_of (eval st lo) in
      let hi = int_of (eval st hi) in
      try
        for i = lo to hi - 1 do
          st.frame.(slot) <- VInt i;
          exec st body
        done
      with Brk -> ()
    end
  | For_down (slot, hi, lo, body) -> begin
      let hi = int_of (eval st hi) in
      let lo = int_of (eval st lo) in
      try
        for i = hi downto lo do
          st.frame.(slot) <- VInt i;
          exec st body
        done
      with Brk -> ()
    end
  | For_list (slot, list_slot, body) -> begin
      let items = list_of st.frame.(list_slot) in
      try
        List.iter
          (fun v ->
            st.frame.(slot) <- v;
            exec st body)
          items
      with Brk -> ()
    end
  | Push (slot, e) ->
      let v = eval st e in
      st.frame.(slot) <- VList (v :: list_of st.frame.(slot))
  | Break -> raise Brk
  | Emit { code; addr; fmt; args } ->
      let addr = int_of (eval st addr) in
      let args = List.map (eval st) args in
      let msg = format_finding fmt args in
      st.findings <-
        Policy.finding ~policy:st.prog.name ~addr ~code msg :: st.findings

type outcome = {
  verdict : (Policy.verdict, error) result;
  fuel_left : int;
  vm_nodes : int;
}

let default_fuel (ctx : Policy.context) =
  Costmodel.vm_fuel_base
  + (Costmodel.vm_fuel_per_entry * Array.length ctx.Policy.buffer.Disasm.entries)

let build_tables (p : Prog.t) =
  Array.map
    (fun entries ->
      let tbl = Hashtbl.create (2 * List.length entries + 1) in
      List.iter (fun (k, v) -> Hashtbl.replace tbl k v) entries;
      tbl)
    p.tables

let run ?fuel ?(vm_perf = Sgx.Perf.create ()) ?tables (p : Prog.t)
    (ctx : Policy.context) : outcome =
  let fuel = match fuel with Some f -> f | None -> default_fuel ctx in
  let tables = match tables with Some t -> t | None -> build_tables p in
  let st =
    {
      ctx;
      prog = p;
      tables;
      frame = Array.make (max p.locals 1) (VInt 0);
      fuel;
      steps = 0;
      findings = [];
      sols = Hashtbl.create 8;
      san_sols = Hashtbl.create 8;
    }
  in
  let verdict =
    try
      exec st p.body;
      let fs = List.rev st.findings in
      let fs =
        if p.sort_findings then
          List.stable_sort
            (fun (a : Policy.finding) b -> compare a.Policy.addr b.Policy.addr)
            fs
        else fs
      in
      Ok (Policy.of_findings fs)
    with
    | Stop e -> Error e
    | Brk -> Error (Type_error "break outside loop")
  in
  Sgx.Perf.count_cycles vm_perf (st.steps * Costmodel.vm_step);
  { verdict; fuel_left = st.fuel; vm_nodes = st.steps }

let policy ?fuel ?vm_perf (p : Prog.t) : Policy.t =
  (* the embedded tables are hashed once here, not per check — the
     native modules build their lookup tables at [make] time too *)
  let tables = build_tables p in
  let check ctx =
    match (run ?fuel ?vm_perf ~tables p ctx).verdict with
    | Ok v -> v
    | Error e ->
        Policy.Violations
          [
            Policy.finding ~policy:p.name ~addr:0 ~code:"policy-vm-error"
              (Printf.sprintf "policy program failed: %s" (error_to_string e));
          ]
  in
  { Policy.name = p.name; check }

let of_blob ?fuel ?vm_perf blob =
  match Encode.decode blob with
  | Error e -> Error e
  | Ok p ->
      (match vm_perf with
      | Some perf ->
          Sgx.Perf.count_cycles perf (Costmodel.vm_decode_per_byte * String.length blob)
      | None -> ());
      Ok (policy ?fuel ?vm_perf p)
