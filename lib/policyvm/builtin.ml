open Prog

(* Combinator shorthand for authoring programs. *)
let ci n = Const (C_int n)
let v i = Var i
let ( +: ) a b = Bin (B_add, a, b)
let ( -: ) a b = Bin (B_sub, a, b)
let ( =: ) a b = Bin (B_eq, a, b)
let ( <: ) a b = Bin (B_lt, a, b)
let min_ a b = Bin (B_min, a, b)
let land_ a b = Bin (B_land, a, b)
let reg_eq a b = Bin (B_reg_eq, a, b)
let not_ e = Un (U_not, e)
let is_some e = Un (U_is_some, e)
let is_none e = not_ (is_some e)
let fst_ e = Un (U_fst, e)
let snd_ e = Un (U_snd, e)
let get e = Get e
let prim p args = Prim (p, args)

let all_of = function
  | [] -> Const (C_bool true)
  | e :: es -> List.fold_left (fun a b -> And (a, b)) e es

let if_ c t = If (c, t, Nop)
let emit ~code ~addr ~fmt args = Emit { code; addr; fmt; args }

(* ---- library-linking ----------------------------------------------- *)

let libc ~db =
  let di = 0 and nm = 1 and expected = 2 and h = 3 in
  let dc p = prim p [ v di ] in
  {
    name = "library-linking";
    locals = 4;
    sort_findings = false;
    tables = [| db |];
    body =
      For
        ( di,
          ci 0,
          prim P_num_direct_calls [],
          Seq
            [
              Charge (C_policy_step, 1);
              Set (nm, dc P_dc_name);
              If
                ( is_some (v nm),
                  Seq
                    [
                      Set (expected, prim P_table_lookup [ ci 0; get (v nm) ]);
                      if_ (is_some (v expected))
                        (Seq
                           [
                             Set (h, prim P_function_hash [ dc P_dc_target ]);
                             If
                               ( is_some (v h),
                                 if_
                                   (not_ (get (v expected) =: get (v h)))
                                   (emit ~code:"libc-hash-mismatch" ~addr:(dc P_dc_addr)
                                      ~fmt:
                                        "function %s does not match the approved \
                                         library release"
                                      [ get (v nm) ]),
                                 emit ~code:"call-target-outside-code"
                                   ~addr:(dc P_dc_addr)
                                   ~fmt:"call target %s at 0x%x is outside the code"
                                   [ get (v nm); dc P_dc_target ] );
                           ]);
                    ],
                  emit ~code:"call-target-unknown" ~addr:(dc P_dc_addr)
                    ~fmt:
                      "direct call at 0x%x targets 0x%x, which is not a known function"
                    [ dc P_dc_addr; dc P_dc_target ] );
            ] );
  }

(* ---- stack-protection (flow mode) ---------------------------------- *)

let stack ~exempt =
  let fi = 0
  and slice = 1
  and i0 = 2
  and i1 = 3
  and i = 4
  and candidates = 5
  and canary_store = 6
  and src = 7
  and j = 8
  and found = 9
  and sites = 10
  and tmp = 11
  and site_blocks = 12
  and scratch = 13
  and guarded = 14
  and elt = 15
  and probe = 16
  and fname = 17
  and nsites = 18 in
  {
    name = "stack-protection";
    locals = 19;
    sort_findings = false;
    tables = [| List.map (fun n -> (n, "")) exempt |];
    body =
      For
        ( fi,
          ci 0,
          prim P_num_functions [],
          Seq
            [
              Set (fname, prim P_fn_name [ v fi ]);
              if_
                (is_none (prim P_table_lookup [ ci 0; v fname ]))
                (Seq
                   [
                     Set (slice, prim P_fn_slice [ v fi ]);
                     If
                       ( is_none (v slice),
                         emit ~code:"function-outside-code"
                           ~addr:(prim P_fn_addr [ v fi ])
                           ~fmt:"function %s is not within the code" [ v fname ],
                         Seq
                           [
                             Set (i0, fst_ (get (v slice)));
                             Set (i1, snd_ (get (v slice)));
                             Set (candidates, ci 0);
                             Set (canary_store, ci 0);
                             (* step 1: candidate canary stores, source
                                traced backwards to its definition *)
                             For
                               ( i,
                                 v i0,
                                 v i1,
                                 Seq
                                   [
                                     Charge (C_policy_step, 1);
                                     Set (scratch, prim P_stack_store [ v i ]);
                                     if_ (is_some (v scratch))
                                       (Seq
                                          [
                                            Set (src, get (v scratch));
                                            Set (candidates, v candidates +: ci 1);
                                            Set (found, ci 0);
                                            For_down
                                              ( j,
                                                v i -: ci 1,
                                                v i0,
                                                Seq
                                                  [
                                                    Charge (C_backtrack_step, 1);
                                                    If
                                                      ( prim P_canary_load_into
                                                          [ v src; v j ],
                                                        Seq [ Set (found, ci 1); Break ],
                                                        if_
                                                          (prim P_defines [ v src; v j ])
                                                          Break );
                                                  ] );
                                            if_ (v found =: ci 1) (Set (canary_store, ci 1));
                                          ]);
                                   ] );
                             if_
                               (not_ (v candidates =: ci 0))
                               (Seq
                                  [
                                    (* one linear scan collects every
                                       complete canary check *)
                                    Set (sites, Const C_nil);
                                    Set (nsites, ci 0);
                                    For
                                      ( i,
                                        v i0 +: ci 1,
                                        v i1,
                                        Seq
                                          [
                                            Charge (C_pattern_probe, 1);
                                            Set
                                              ( probe,
                                                prim P_canary_check_site
                                                  [ v i; v i0; v i1 ] );
                                            if_ (is_some (v probe))
                                              (Seq
                                                 [
                                                   Push (sites, get (v probe));
                                                   Set (nsites, v nsites +: ci 1);
                                                 ]);
                                          ] );
                                    If
                                      ( Or (v canary_store =: ci 0, v nsites =: ci 0),
                                        emit ~code:"missing-stack-protector"
                                          ~addr:(prim P_fn_addr [ v fi ])
                                          ~fmt:
                                            "function %s lacks stack-protector \
                                             instrumentation"
                                          [ v fname ],
                                        if_
                                          (prim P_has_cfg [ v fi ])
                                          (Seq
                                             [
                                               (* map sites to blocks; the
                                                  double reversal preserves
                                                  the native scan's
                                                  descending site order *)
                                               Set (tmp, Const C_nil);
                                               For_list
                                                 ( elt,
                                                   sites,
                                                   Seq
                                                     [
                                                       Set
                                                         ( probe,
                                                           prim P_block_of_index
                                                             [ v fi; v elt ] );
                                                       if_ (is_some (v probe))
                                                         (Push (tmp, get (v probe)));
                                                     ] );
                                               Set (site_blocks, Const C_nil);
                                               For_list
                                                 (elt, tmp, Push (site_blocks, v elt));
                                               (* dominance decides whether a
                                                  check guards each return *)
                                               For
                                                 ( i,
                                                   v i0,
                                                   v i1,
                                                   if_
                                                     (prim P_is_ret [ v i ])
                                                     (Seq
                                                        [
                                                          Set
                                                            ( scratch,
                                                              prim P_block_of_index
                                                                [ v fi; v i ] );
                                                          if_ (is_some (v scratch))
                                                            (if_
                                                               (prim P_block_reachable
                                                                  [ v fi; get (v scratch) ])
                                                               (Seq
                                                                  [
                                                                    Set (guarded, ci 0);
                                                                    For_list
                                                                      ( elt,
                                                                        site_blocks,
                                                                        Seq
                                                                          [
                                                                            Charge
                                                                              ( C_dom_step,
                                                                                1 );
                                                                            if_
                                                                              (prim
                                                                                 P_dominates
                                                                                 [
                                                                                   v fi;
                                                                                   v elt;
                                                                                   get
                                                                                     (v
                                                                                        scratch);
                                                                                 ])
                                                                              (Seq
                                                                                 [
                                                                                   Set
                                                                                     ( guarded,
                                                                                       ci 1
                                                                                     );
                                                                                   Break;
                                                                                 ]);
                                                                          ] );
                                                                    if_
                                                                      (v guarded =: ci 0)
                                                                      (emit
                                                                         ~code:
                                                                           "stack-ret-unprotected"
                                                                         ~addr:
                                                                           (prim
                                                                              P_entry_addr
                                                                              [ v i ])
                                                                         ~fmt:
                                                                           "function %s \
                                                                            can return \
                                                                            at 0x%x \
                                                                            without \
                                                                            passing the \
                                                                            canary check"
                                                                         [
                                                                           v fname;
                                                                           prim
                                                                             P_entry_addr
                                                                             [ v i ];
                                                                         ]);
                                                                  ]));
                                                        ]) );
                                             ]) );
                                  ]);
                           ] );
                   ]);
            ] );
  }

(* ---- indirect-function-calls (flow mode) --------------------------- *)

let ifcc () =
  let ii = 0
  and addr = 1
  and treg = 2
  and wlen = 3
  and matched = 4
  and seq_start = 5
  and bad_code = 6
  and bad_arg = 7
  and ptr = 8
  and base = 9
  and sub = 10
  and mask = 11
  and add = 12
  and ptr_addr = 13
  and base_addr = 14
  and m = 15
  and masked = 16
  and sound = 17
  and f1 = 18
  and fact = 19
  and kind = 20
  and fa = 21
  and fb = 22
  and f2 = 23 in
  let win k = prim P_ic_window [ v ii; ci k ] in
  (* re-emit the pattern verdict recorded in [bad_code]/[bad_arg] — the
     native `Bad f` fallback *)
  let emit_bad =
    If
      ( v bad_code =: ci 0,
        emit ~code:"ifcc-unprotected-call" ~addr:(v addr)
          ~fmt:"unprotected indirect call at 0x%x" [ v addr ],
        If
          ( v bad_code =: ci 1,
            emit ~code:"ifcc-mask-base-outside-table" ~addr:(v addr)
              ~fmt:"indirect call at 0x%x masks against 0x%x, outside any jump table"
              [ v addr; v bad_arg ],
            If
              ( v bad_code =: ci 2,
                emit ~code:"ifcc-target-outside-table" ~addr:(v addr)
                  ~fmt:"indirect call at 0x%x resolves to 0x%x, outside the jump table"
                  [ v addr; v bad_arg ],
                emit ~code:"ifcc-sequence-missing" ~addr:(v addr)
                  ~fmt:"indirect call at 0x%x lacks the IFCC masking sequence"
                  [ v addr ] ) ) )
  in
  let fallback = if_ (v matched =: ci 0) emit_bad in
  {
    name = "indirect-function-calls";
    locals = 24;
    sort_findings = true;
    tables = [||];
    body =
      Seq
        [
          For
            ( ii,
              ci 0,
              prim P_num_indirect_calls [],
              Seq
                [
                  Charge (C_policy_step, 1);
                  Charge (C_pattern_probe, 5);
                  Set (addr, prim P_ic_addr [ v ii ]);
                  Set (treg, prim P_ic_reg [ v ii ]);
                  (* the paper's peephole verdict over the preceding
                     five-entry window *)
                  Set (matched, ci 0);
                  Set (bad_code, ci 3);
                  Set (wlen, prim P_ic_window_len [ v ii ]);
                  If
                    ( v wlen <: ci 5,
                      Set (bad_code, ci 0),
                      Seq
                        [
                          Set (ptr, prim P_lea_rip_target [ win 5 ]);
                          Set (base, prim P_lea_rip_target [ win 4 ]);
                          Set (sub, prim P_ifcc_sub32 [ win 3 ]);
                          Set (mask, prim P_ifcc_and64 [ win 2 ]);
                          Set (add, prim P_ifcc_add64 [ win 1 ]);
                          if_
                            (all_of
                               [
                                 is_some (v ptr);
                                 is_some (v base);
                                 is_some (v sub);
                                 is_some (v mask);
                                 is_some (v add);
                                 reg_eq (fst_ (get (v ptr))) (v treg);
                                 reg_eq (snd_ (get (v mask))) (v treg);
                                 reg_eq (fst_ (get (v sub))) (fst_ (get (v base)));
                                 reg_eq (snd_ (get (v sub))) (v treg);
                                 reg_eq (fst_ (get (v add))) (fst_ (get (v base)));
                                 reg_eq (snd_ (get (v add))) (v treg);
                               ])
                            (Seq
                               [
                                 Set (ptr_addr, snd_ (get (v ptr)));
                                 Set (base_addr, snd_ (get (v base)));
                                 Set (m, fst_ (get (v mask)));
                                 Set
                                   ( masked,
                                     v base_addr
                                     +: land_ (v ptr_addr -: v base_addr) (v m) );
                                 If
                                   ( not_ (prim P_in_table [ v base_addr ]),
                                     Seq
                                       [ Set (bad_code, ci 1); Set (bad_arg, v base_addr) ],
                                     If
                                       ( not_ (prim P_in_table [ v masked ]),
                                         Seq
                                           [
                                             Set (bad_code, ci 2);
                                             Set (bad_arg, v masked);
                                           ],
                                         Seq
                                           [
                                             Set (matched, ci 1);
                                             Set (seq_start, prim P_entry_addr [ win 5 ]);
                                           ] ) );
                               ]);
                        ] );
                  (* straight-line soundness fast path *)
                  Set (sound, ci 0);
                  if_
                    (v matched =: ci 1)
                    (Seq
                       [
                         Charge (C_range_probe, 2);
                         if_
                           (not_
                              (prim P_branch_target_within
                                 [ v seq_start +: ci 1; v addr +: ci 1 ]))
                           (Seq
                              [
                                Set (f1, prim P_function_containing [ v seq_start ]);
                                Set (f2, prim P_function_containing [ v addr ]);
                                if_
                                  (all_of
                                     [
                                       is_some (v f1);
                                       is_some (v f2);
                                       prim P_fn_addr [ get (v f1) ]
                                       =: prim P_fn_addr [ get (v f2) ];
                                     ])
                                  (Set (sound, ci 1));
                              ]);
                       ]);
                  if_
                    (v sound =: ci 0)
                    (Seq
                       [
                         (* flow verdict: the register fact just before
                            the call decides *)
                         Set (f1, prim P_function_containing [ v addr ]);
                         If
                           ( is_none (v f1),
                             fallback,
                             If
                               ( not_ (prim P_has_cfg [ get (v f1) ]),
                                 fallback,
                                 Seq
                                   [
                                     Set
                                       ( fact,
                                         prim P_fact_before
                                           [
                                             get (v f1);
                                             prim P_ic_index [ v ii ];
                                             v treg;
                                           ] );
                                     if_ (is_some (v fact))
                                       (Seq
                                          [
                                            Set (kind, fst_ (get (v fact)));
                                            Set (fa, fst_ (snd_ (get (v fact))));
                                            Set (fb, snd_ (snd_ (get (v fact))));
                                            If
                                              ( v kind =: ci kind_target,
                                                If
                                                  ( not_ (prim P_in_table [ v fa ]),
                                                    emit
                                                      ~code:
                                                        "ifcc-mask-base-outside-table"
                                                      ~addr:(v addr)
                                                      ~fmt:
                                                        "indirect call at 0x%x masks \
                                                         against 0x%x, outside any \
                                                         jump table"
                                                      [ v addr; v fa ],
                                                    if_
                                                      (not_ (prim P_in_table [ v fb ]))
                                                      (emit
                                                         ~code:
                                                           "ifcc-target-outside-table"
                                                         ~addr:(v addr)
                                                         ~fmt:
                                                           "indirect call at 0x%x \
                                                            resolves to 0x%x, outside \
                                                            the jump table"
                                                         [ v addr; v fb ]) ),
                                                If
                                                  ( v kind =: ci kind_top,
                                                    emit ~code:"ifcc-unmasked-on-path"
                                                      ~addr:(v addr)
                                                      ~fmt:
                                                        "indirect call at 0x%x is \
                                                         reachable with its target \
                                                         register unmasked: the IFCC \
                                                         masking sequence does not \
                                                         dominate the call"
                                                      [ v addr ],
                                                    emit ~code:"ifcc-sequence-missing"
                                                      ~addr:(v addr)
                                                      ~fmt:
                                                        "indirect call at 0x%x lacks \
                                                         the IFCC masking sequence"
                                                      [ v addr ] ) );
                                          ]);
                                   ] ) );
                       ]);
                ] );
          For
            ( ii,
              ci 0,
              prim P_num_indirect_jumps [],
              Seq
                [
                  Charge (C_policy_step, 1);
                  emit ~code:"ifcc-unprotected-jump"
                    ~addr:(prim P_ij_addr [ v ii ])
                    ~fmt:"unprotected indirect jump at 0x%x"
                    [ prim P_ij_addr [ v ii ] ];
                ] );
        ];
  }

(* ---- lint ----------------------------------------------------------- *)

let lint () =
  let fi = 0
  and slice = 1
  and i0 = 2
  and i1 = 3
  and i = 4
  and t = 5
  and k = 6
  and nb = 7
  and reg = 8
  and fact = 9
  and kind = 10
  and tv = 11
  and resolved = 12
  and j_idx = 13
  and j_addr = 14
  and fname = 15
  and last = 16 in
  {
    name = "lint";
    locals = 17;
    sort_findings = true;
    tables = [||];
    body =
      For
        ( fi,
          ci 0,
          prim P_num_functions [],
          (* jump-table pseudo-functions are exempt from local
             reachability *)
          if_
            (not_ (prim P_in_table [ prim P_fn_addr [ v fi ] ]))
            (Seq
               [
                 Set (slice, prim P_fn_slice [ v fi ]);
                 if_ (is_some (v slice))
                   (Seq
                      [
                        Set (i0, fst_ (get (v slice)));
                        Set (i1, snd_ (get (v slice)));
                        if_
                          (prim P_has_cfg [ v fi ])
                          (Seq
                             [
                               Set (fname, prim P_fn_name [ v fi ]);
                               (* direct branches must land on decoded
                                  instructions *)
                               For
                                 ( i,
                                   v i0,
                                   min_ (v i1) (prim P_num_entries []),
                                   Seq
                                     [
                                       Charge (C_policy_step, 1);
                                       Set (t, prim P_branch_target [ v i ]);
                                       if_
                                         (all_of
                                            [
                                              is_some (v t);
                                              Bin (B_le, prim P_code_base [], get (v t));
                                              get (v t) <: prim P_code_end [];
                                              is_none
                                                (prim P_index_of_addr [ get (v t) ]);
                                            ])
                                         (emit ~code:"lint-branch-into-instruction"
                                            ~addr:(prim P_entry_addr [ v i ])
                                            ~fmt:
                                              "branch at 0x%x targets 0x%x, inside \
                                               another instruction"
                                            [ prim P_entry_addr [ v i ]; get (v t) ]);
                                     ] );
                               (* unreachable non-padding blocks *)
                               For
                                 ( k,
                                   ci 0,
                                   prim P_num_blocks [ v fi ],
                                   Seq
                                     [
                                       Charge (C_policy_step, 1);
                                       if_
                                         (And
                                            ( not_
                                                (prim P_block_reachable [ v fi; v k ]),
                                              not_ (prim P_block_padding [ v fi; v k ])
                                            ))
                                         (emit ~code:"lint-unreachable-block"
                                            ~addr:(prim P_block_addr [ v fi; v k ])
                                            ~fmt:
                                              "unreachable block at 0x%x (%d \
                                               instructions) in %s"
                                            [
                                              prim P_block_addr [ v fi; v k ];
                                              prim P_block_hi [ v fi; v k ]
                                              -: prim P_block_lo [ v fi; v k ];
                                              v fname;
                                            ]);
                                     ] );
                               (* computed jumps with a resolvable target *)
                               For
                                 ( k,
                                   ci 0,
                                   prim P_num_indirect_jumps [],
                                   Seq
                                     [
                                       Set (j_idx, prim P_ij_index [ v k ]);
                                       Set (j_addr, prim P_ij_addr [ v k ]);
                                       if_
                                         (And
                                            ( Bin (B_le, v i0, v j_idx),
                                              v j_idx <: v i1 ))
                                         (Seq
                                            [
                                              Set
                                                ( reg,
                                                  prim P_sole_reg_operand [ v j_idx ] );
                                              if_ (is_some (v reg))
                                                (Seq
                                                   [
                                                     Set
                                                       ( fact,
                                                         prim P_fact_before
                                                           [
                                                             v fi; v j_idx; get (v reg);
                                                           ] );
                                                     if_ (is_some (v fact))
                                                       (Seq
                                                          [
                                                            Set
                                                              ( kind,
                                                                fst_ (get (v fact)) );
                                                            Set (resolved, ci 0);
                                                            If
                                                              ( v kind =: ci kind_addr,
                                                                Seq
                                                                  [
                                                                    Set
                                                                      ( tv,
                                                                        fst_
                                                                          (snd_
                                                                             (get
                                                                                (v fact)))
                                                                      );
                                                                    Set (resolved, ci 1);
                                                                  ],
                                                                if_
                                                                  (v kind
                                                                  =: ci kind_target)
                                                                  (Seq
                                                                     [
                                                                       Set
                                                                         ( tv,
                                                                           snd_
                                                                             (snd_
                                                                                (get
                                                                                   (v
                                                                                      fact)))
                                                                         );
                                                                       Set
                                                                         (resolved, ci 1);
                                                                     ]) );
                                                            if_
                                                              (all_of
                                                                 [
                                                                   v resolved =: ci 1;
                                                                   not_
                                                                     (prim P_in_table
                                                                        [ v tv ]);
                                                                   not_
                                                                     (prim
                                                                        P_is_function_start
                                                                        [ v tv ]);
                                                                 ])
                                                              (emit
                                                                 ~code:
                                                                   "lint-computed-jump-outside-table"
                                                                 ~addr:(v j_addr)
                                                                 ~fmt:
                                                                   "computed jump at \
                                                                    0x%x resolves to \
                                                                    0x%x, outside \
                                                                    every jump table \
                                                                    and function start"
                                                                 [ v j_addr; v tv ]);
                                                          ]);
                                                   ]);
                                            ]);
                                     ] );
                               (* fallthrough off the end of the function *)
                               Set (nb, prim P_num_blocks [ v fi ]);
                               if_
                                 (ci 0 <: v nb)
                                 (Seq
                                    [
                                      Set (last, v nb -: ci 1);
                                      if_
                                        (all_of
                                           [
                                             prim P_block_reachable [ v fi; v last ];
                                             not_
                                               (prim P_block_padding [ v fi; v last ]);
                                             prim P_block_hi [ v fi; v last ] -: ci 1
                                             <: prim P_num_entries [];
                                             prim P_can_fall_through
                                               [
                                                 prim P_block_hi [ v fi; v last ]
                                                 -: ci 1;
                                               ];
                                           ])
                                        (emit ~code:"lint-fallthrough-off-end"
                                           ~addr:
                                             (prim P_entry_addr
                                                [
                                                  prim P_block_hi [ v fi; v last ]
                                                  -: ci 1;
                                                ])
                                           ~fmt:
                                             "control can fall through 0x%x off the \
                                              end of %s"
                                           [
                                             prim P_entry_addr
                                               [
                                                 prim P_block_hi [ v fi; v last ]
                                                 -: ci 1;
                                               ];
                                             v fname;
                                           ]);
                                    ]);
                             ]);
                      ]);
               ]) );
  }

(* ---- sanitize (entry-point sanitization, interprocedural) ---------- *)

(* Finding messages must match the native policy byte for byte; register
   names carry a literal '%' that the VM's format interpreter would
   otherwise read as a directive. *)
let pct_escape s = String.concat "%%" (String.split_on_char '%' s)

let sanitize () =
  let fi = 0 and slice = 1 and i = 2 and fact = 3 and viol = 4 in
  let outside_code =
    emit ~code:"sanitize-entry-outside-code"
      ~addr:(prim P_fn_addr [ v fi ])
      ~fmt:"entry point %s has no decoded instructions"
      [ prim P_fn_name [ v fi ] ]
  in
  let viol_bit bit = not_ (land_ (v viol) (ci (1 lsl bit)) =: ci 0) in
  let reg_check rn =
    if_ (viol_bit rn)
      (emit ~code:"sanitize-unscrubbed-reg"
         ~addr:(prim P_entry_addr [ v i ])
         ~fmt:
           ("entry point reads "
           ^ pct_escape (X86.Reg.name64 (X86.Reg.of_number rn))
           ^ " before sanitizing it")
         [])
  in
  {
    name = "sanitize";
    locals = 5;
    sort_findings = true;
    tables = [||];
    body =
      For
        ( fi,
          ci 0,
          prim P_num_functions [],
          Seq
            [
              Charge (C_policy_step, 1);
              if_
                (prim P_fn_is_entry [ v fi ])
                (Seq
                   [
                     Set (slice, prim P_fn_slice [ v fi ]);
                     If
                       ( is_none (v slice),
                         outside_code,
                         If
                           ( not_ (prim P_has_cfg [ v fi ]),
                             outside_code,
                             For
                               ( i,
                                 fst_ (get (v slice)),
                                 min_ (snd_ (get (v slice))) (prim P_num_entries []),
                                 Seq
                                   [
                                     Charge (C_policy_step, 1);
                                     Set (fact, prim P_san_fact [ v fi; v i ]);
                                     if_ (is_some (v fact))
                                       (Seq
                                          ([
                                             Set
                                               ( viol,
                                                 land_
                                                   (land_
                                                      (prim P_san_reads [ v i ])
                                                      (ci Engarde.Summary.all_state
                                                      -: get (v fact)))
                                                   (ci Engarde.Summary.sanitize_mask)
                                               );
                                           ]
                                          @ List.map reg_check
                                              Engarde.Policy_sanitize.tracked_regs
                                          @ [
                                              if_
                                                (viol_bit Engarde.Summary.flags_bit)
                                                (emit
                                                   ~code:"sanitize-unscrubbed-flags"
                                                   ~addr:(prim P_entry_addr [ v i ])
                                                   ~fmt:
                                                     "entry point branches on \
                                                      host-controlled flags before \
                                                      defining them"
                                                   []);
                                            ]));
                                   ] ) ) );
                   ]);
            ] );
  }

let all ~db ~exempt =
  [
    ("libc", libc ~db);
    ("stack", stack ~exempt);
    ("ifcc", ifcc ());
    ("lint", lint ());
    ("sanitize", sanitize ());
  ]
