open Engarde

(* The policy IR: a small statement/expression tree over the shared
   analysis facts. See prog.mli for the semantics contract. *)

type costc =
  | C_policy_step
  | C_pattern_probe
  | C_backtrack_step
  | C_dom_step
  | C_range_probe

let cost_cycles = function
  | C_policy_step -> Costmodel.policy_step
  | C_pattern_probe -> Costmodel.pattern_probe
  | C_backtrack_step -> Costmodel.backtrack_step
  | C_dom_step -> Costmodel.dom_step
  | C_range_probe -> Costmodel.range_probe

type const =
  | C_int of int
  | C_bool of bool
  | C_str of string
  | C_none
  | C_nil

type unop =
  | U_not
  | U_is_some
  | U_fst
  | U_snd

type binop =
  | B_add
  | B_sub
  | B_mul
  | B_land
  | B_min
  | B_eq
  | B_lt
  | B_le
  | B_reg_eq

type prim =
  (* buffer *)
  | P_num_entries
  | P_entry_addr
  | P_code_base
  | P_code_end
  | P_index_of_addr
  | P_is_ret
  | P_can_fall_through
  | P_branch_target
  | P_sole_reg_operand
  (* instruction shapes (lib/core/patterns.ml) *)
  | P_stack_store
  | P_canary_load_into
  | P_defines
  | P_canary_check_site
  | P_lea_rip_target
  | P_ifcc_sub32
  | P_ifcc_and64
  | P_ifcc_add64
  (* functions *)
  | P_num_functions
  | P_fn_addr
  | P_fn_name
  | P_fn_slice
  | P_function_containing
  | P_is_function_start
  (* direct calls *)
  | P_num_direct_calls
  | P_dc_addr
  | P_dc_target
  | P_dc_name
  (* indirect calls *)
  | P_num_indirect_calls
  | P_ic_addr
  | P_ic_index
  | P_ic_reg
  | P_ic_window_len
  | P_ic_window
  (* indirect jumps *)
  | P_num_indirect_jumps
  | P_ij_index
  | P_ij_addr
  (* tables, hashes, ranges *)
  | P_in_table
  | P_function_hash
  | P_table_lookup
  | P_branch_target_within
  (* CFG *)
  | P_has_cfg
  | P_num_blocks
  | P_block_lo
  | P_block_hi
  | P_block_addr
  | P_block_padding
  | P_block_reachable
  | P_block_of_index
  | P_dominates
  (* dataflow *)
  | P_fact_before
  (* interprocedural tier (appended: wire numbering is append-only) *)
  | P_fn_is_entry
  | P_san_reads
  | P_san_fact

type expr =
  | Const of const
  | Var of int
  | Un of unop * expr
  | Bin of binop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Get of expr
  | Prim of prim * expr list

type stmt =
  | Nop
  | Seq of stmt list
  | Charge of costc * int
  | Set of int * expr
  | If of expr * stmt * stmt
  | For of int * expr * expr * stmt
  | For_down of int * expr * expr * stmt
  | For_list of int * int * stmt
  | Push of int * expr
  | Break
  | Emit of { code : string; addr : expr; fmt : string; args : expr list }

type t = {
  name : string;
  locals : int;
  sort_findings : bool;
  tables : (string * string) list array;
  body : stmt;
}

(* Static limits the canonical decoder enforces; kept here so encode
   and the builtin compiler agree on what is representable. *)
let max_name = 64
let max_locals = 256
let max_tables = 4
let max_table_entries = 65_536
let max_string = 4_096
let max_code = 64
let max_nodes = 1_000_000
let max_depth = 256

(* Fact-kind encoding for [P_fact_before]: the dataflow abstract value
   as (kind, (a, b)). *)
let kind_top = 0
let kind_addr = 1
let kind_diff = 2
let kind_masked = 3
let kind_target = 4
