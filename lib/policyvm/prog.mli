(** The negotiated-policy IR.

    A policy program is a statement tree interpreted by {!Vm} against
    one {!Policy.context}: an event visitor over the shared
    {!Analysis.t} facts, with primitives for event selection (direct
    and indirect call sites, function slices, rets), hash and table
    lookups (the libc db, IFCC jump tables), dominance and dataflow
    queries, and finding emission. Programs do their own modelled-cost
    accounting through [Charge] statements — the contract that lets a
    DSL-compiled policy reproduce a native module's cycle counts bit
    for bit — while the interpreter separately meters its own
    dispatch work ({!Costmodel.vm_step} per node, on a separate
    counter) and decrements one fuel unit per node so hostile
    programs terminate.

    Values are dynamically typed: integers, booleans, strings,
    registers, options, pairs and lists. A type mismatch at run time
    is not a crash but a VM error, which {!Vm.policy} converts into a
    ["policy-vm-error"] violation — an agreed program that misbehaves
    rejects the binary rather than wedging the service. *)

(** Chargeable cost constants — the policy-phase subset of
    {!Costmodel} a program may spend from. *)
type costc =
  | C_policy_step
  | C_pattern_probe
  | C_backtrack_step
  | C_dom_step
  | C_range_probe

val cost_cycles : costc -> int

type const =
  | C_int of int
  | C_bool of bool
  | C_str of string
  | C_none      (** the empty option *)
  | C_nil       (** the empty list *)

type unop =
  | U_not
  | U_is_some
  | U_fst
  | U_snd

type binop =
  | B_add
  | B_sub
  | B_mul
  | B_land
  | B_min
  | B_eq       (** structural, ints/bools/strings *)
  | B_lt
  | B_le
  | B_reg_eq   (** register equality *)

(** Primitives: the fact interface. Arities and types are documented
    in DESIGN.md §13; the interpreter checks both at run time. Index
    arguments are bounds-checked — out-of-range access is a VM error,
    never an exception escaping the VM. *)
type prim =
  | P_num_entries
  | P_entry_addr
  | P_code_base
  | P_code_end
  | P_index_of_addr
  | P_is_ret
  | P_can_fall_through
  | P_branch_target
  | P_sole_reg_operand
  | P_stack_store
  | P_canary_load_into
  | P_defines
  | P_canary_check_site
  | P_lea_rip_target
  | P_ifcc_sub32
  | P_ifcc_and64
  | P_ifcc_add64
  | P_num_functions
  | P_fn_addr
  | P_fn_name
  | P_fn_slice
  | P_function_containing
  | P_is_function_start
  | P_num_direct_calls
  | P_dc_addr
  | P_dc_target
  | P_dc_name
  | P_num_indirect_calls
  | P_ic_addr
  | P_ic_index
  | P_ic_reg
  | P_ic_window_len
  | P_ic_window
  | P_num_indirect_jumps
  | P_ij_index
  | P_ij_addr
  | P_in_table
  | P_function_hash
  | P_table_lookup
  | P_branch_target_within
  | P_has_cfg
  | P_num_blocks
  | P_block_lo
  | P_block_hi
  | P_block_addr
  | P_block_padding
  | P_block_reachable
  | P_block_of_index
  | P_dominates
  | P_fact_before
  | P_fn_is_entry
      (** [fi → bool]: is function [fi] an enclave entry point by the
          toolchain naming convention ({!Engarde.Policy_sanitize.is_entry_name}) *)
  | P_san_reads
      (** [i → int]: the state mask ({!Engarde.Summary} bit convention)
          instruction [i] may consume, with direct calls resolved
          through callee summaries — {!Engarde.Summary.effective_reads} *)
  | P_san_fact
      (** [fi i → int option]: the must-initialized state mask holding
          just before instruction [i] of function [fi] under the
          interprocedural must-init dataflow; [None] when the function
          has no CFG or the instruction is unreachable *)

type expr =
  | Const of const
  | Var of int
  | Un of unop * expr
  | Bin of binop * expr * expr
  | And of expr * expr     (** short-circuit *)
  | Or of expr * expr      (** short-circuit *)
  | Get of expr            (** unwrap [Some]; [None] is a VM error *)
  | Prim of prim * expr list

type stmt =
  | Nop
  | Seq of stmt list
  | Charge of costc * int  (** spend [times × cost_cycles c] modelled
                               cycles from the policy counter *)
  | Set of int * expr
  | If of expr * stmt * stmt
  | For of int * expr * expr * stmt
      (** ascending over the half-open range [lo, hi) *)
  | For_down of int * expr * expr * stmt
      (** descending from [hi] down to [lo], both inclusive *)
  | For_list of int * int * stmt
      (** bind each element of list slot, head first *)
  | Push of int * expr     (** cons onto a list slot *)
  | Break                  (** exit the innermost loop *)
  | Emit of { code : string; addr : expr; fmt : string; args : expr list }
      (** append a finding; [fmt] supports [%x] [%d] [%s] [%%] *)

type t = {
  name : string;           (** becomes [Policy.finding.policy] *)
  locals : int;            (** slot-frame size *)
  sort_findings : bool;    (** stable-sort findings by address at exit *)
  tables : (string * string) list array;
      (** embedded key→value tables (libc hash db, exemption lists),
          measured as part of the canonical blob *)
  body : stmt;
}

(** {1 Static limits} (enforced by {!Encode.decode}) *)

val max_name : int
val max_locals : int
val max_tables : int
val max_table_entries : int
val max_string : int
val max_code : int
val max_nodes : int
val max_depth : int

(** {1 Dataflow fact encoding}

    [P_fact_before] returns [Some (kind, (a, b))]: [Top] → (0,(0,0)),
    [Addr a] → (1,(a,0)), [Diff (p,b)] → (2,(p,b)), [Masked (p,b,_)] →
    (3,(p,b)), [Target (base,tgt)] → (4,(base,tgt)). *)

val kind_top : int
val kind_addr : int
val kind_diff : int
val kind_masked : int
val kind_target : int
