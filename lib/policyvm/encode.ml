open Engarde
open Prog

let format_tag = "EGPVM1"
let version = 1

(* ---- enum <-> byte tables ---------------------------------------- *)

let costs = [| C_policy_step; C_pattern_probe; C_backtrack_step; C_dom_step; C_range_probe |]

let unops = [| U_not; U_is_some; U_fst; U_snd |]

let binops = [| B_add; B_sub; B_mul; B_land; B_min; B_eq; B_lt; B_le; B_reg_eq |]

let prims =
  [|
    P_num_entries; P_entry_addr; P_code_base; P_code_end; P_index_of_addr;
    P_is_ret; P_can_fall_through; P_branch_target; P_sole_reg_operand;
    P_stack_store; P_canary_load_into; P_defines; P_canary_check_site;
    P_lea_rip_target; P_ifcc_sub32; P_ifcc_and64; P_ifcc_add64;
    P_num_functions; P_fn_addr; P_fn_name; P_fn_slice;
    P_function_containing; P_is_function_start;
    P_num_direct_calls; P_dc_addr; P_dc_target; P_dc_name;
    P_num_indirect_calls; P_ic_addr; P_ic_index; P_ic_reg; P_ic_window_len;
    P_ic_window;
    P_num_indirect_jumps; P_ij_index; P_ij_addr;
    P_in_table; P_function_hash; P_table_lookup; P_branch_target_within;
    P_has_cfg; P_num_blocks; P_block_lo; P_block_hi; P_block_addr;
    P_block_padding; P_block_reachable; P_block_of_index; P_dominates;
    P_fact_before;
    P_fn_is_entry; P_san_reads; P_san_fact;
  |]

let index_of arr x =
  let rec go i = if arr.(i) = x then i else go (i + 1) in
  go 0

(* ---- serializer --------------------------------------------------- *)

let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let u16 b v =
  u8 b (v land 0xff);
  u8 b ((v lsr 8) land 0xff)

let u32 b v =
  u16 b (v land 0xffff);
  u16 b ((v lsr 16) land 0xffff)

let s64 b v =
  for i = 0 to 7 do
    u8 b ((v asr (8 * i)) land 0xff)
  done

let str8 b s =
  u8 b (String.length s);
  Buffer.add_string b s

let str16 b s =
  u16 b (String.length s);
  Buffer.add_string b s

let rec put_expr b = function
  | Const (C_int v) -> u8 b 0; s64 b v
  | Const (C_bool v) -> u8 b 1; u8 b (if v then 1 else 0)
  | Const (C_str s) -> u8 b 2; str16 b s
  | Const C_none -> u8 b 3
  | Const C_nil -> u8 b 4
  | Var slot -> u8 b 5; u8 b slot
  | Un (op, e) -> u8 b 6; u8 b (index_of unops op); put_expr b e
  | Bin (op, e1, e2) -> u8 b 7; u8 b (index_of binops op); put_expr b e1; put_expr b e2
  | And (e1, e2) -> u8 b 8; put_expr b e1; put_expr b e2
  | Or (e1, e2) -> u8 b 9; put_expr b e1; put_expr b e2
  | Get e -> u8 b 10; put_expr b e
  | Prim (p, args) ->
      u8 b 11;
      u8 b (index_of prims p);
      u8 b (List.length args);
      List.iter (put_expr b) args

let rec put_stmt b = function
  | Nop -> u8 b 0
  | Seq ss ->
      u8 b 1;
      u16 b (List.length ss);
      List.iter (put_stmt b) ss
  | Charge (c, times) -> u8 b 2; u8 b (index_of costs c); u16 b times
  | Set (slot, e) -> u8 b 3; u8 b slot; put_expr b e
  | If (c, t, f) -> u8 b 4; put_expr b c; put_stmt b t; put_stmt b f
  | For (slot, lo, hi, body) ->
      u8 b 5; u8 b slot; put_expr b lo; put_expr b hi; put_stmt b body
  | For_down (slot, hi, lo, body) ->
      u8 b 6; u8 b slot; put_expr b hi; put_expr b lo; put_stmt b body
  | For_list (slot, list_slot, body) ->
      u8 b 7; u8 b slot; u8 b list_slot; put_stmt b body
  | Push (slot, e) -> u8 b 8; u8 b slot; put_expr b e
  | Break -> u8 b 9
  | Emit { code; addr; fmt; args } ->
      u8 b 10;
      str8 b code;
      put_expr b addr;
      str16 b fmt;
      u8 b (List.length args);
      List.iter (put_expr b) args

let to_bytes (p : t) =
  let b = Buffer.create 1024 in
  Buffer.add_string b format_tag;
  u8 b version;
  str8 b p.name;
  u16 b p.locals;
  u8 b (if p.sort_findings then 1 else 0);
  u8 b (Array.length p.tables);
  Array.iter
    (fun entries ->
      u32 b (List.length entries);
      List.iter
        (fun (k, v) ->
          str16 b k;
          str16 b v)
        entries)
    p.tables;
  put_stmt b p.body;
  Buffer.contents b

(* ---- strict decoder ----------------------------------------------- *)

exception Bad of string

type cursor = {
  src : string;
  mutable pos : int;
  mutable nodes : int;
  locals : int;
}

let fail msg = raise (Bad msg)

let need c n =
  if c.pos + n > String.length c.src then fail "truncated program"

let g8 c =
  need c 1;
  let v = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  v

let g16 c =
  let lo = g8 c in
  let hi = g8 c in
  lo lor (hi lsl 8)

let g32 c =
  let lo = g16 c in
  let hi = g16 c in
  lo lor (hi lsl 16)

(* [lsl] is modular on OCaml's 63-bit ints, so or-ing the eight
   shifted bytes is the exact inverse of the [asr]-based encoder for
   every representable int (the top byte's high bits wrap into the
   sign). *)
let gs64 c =
  let v = ref 0 in
  for i = 0 to 7 do
    v := !v lor (g8 c lsl (8 * i))
  done;
  !v

let gstr c len_max len =
  if len > len_max then fail "string too long";
  need c len;
  let s = String.sub c.src c.pos len in
  c.pos <- c.pos + len;
  s

let gstr8 c len_max = gstr c len_max (g8 c)
let gstr16 c len_max = gstr c len_max (g16 c)

let node c =
  c.nodes <- c.nodes + 1;
  if c.nodes > max_nodes then fail "program too large"

let slot c =
  let s = g8 c in
  if s >= c.locals then fail "local slot out of range";
  s

let enum c arr what =
  let i = g8 c in
  if i >= Array.length arr then fail ("unknown " ^ what);
  arr.(i)

let rec get_expr c depth =
  node c;
  if depth > max_depth then fail "nesting too deep";
  match g8 c with
  | 0 -> Const (C_int (gs64 c))
  | 1 -> Const (C_bool (g8 c <> 0))
  | 2 -> Const (C_str (gstr16 c max_string))
  | 3 -> Const C_none
  | 4 -> Const C_nil
  | 5 -> Var (slot c)
  | 6 ->
      let op = enum c unops "unary operator" in
      Un (op, get_expr c (depth + 1))
  | 7 ->
      let op = enum c binops "binary operator" in
      let e1 = get_expr c (depth + 1) in
      let e2 = get_expr c (depth + 1) in
      Bin (op, e1, e2)
  | 8 ->
      let e1 = get_expr c (depth + 1) in
      let e2 = get_expr c (depth + 1) in
      And (e1, e2)
  | 9 ->
      let e1 = get_expr c (depth + 1) in
      let e2 = get_expr c (depth + 1) in
      Or (e1, e2)
  | 10 -> Get (get_expr c (depth + 1))
  | 11 ->
      let p = enum c prims "primitive" in
      let argc = g8 c in
      if argc > 8 then fail "primitive arity too large";
      let args = List.init argc (fun _ -> get_expr c (depth + 1)) in
      Prim (p, args)
  | _ -> fail "unknown expression tag"

let rec get_stmt c depth =
  node c;
  if depth > max_depth then fail "nesting too deep";
  match g8 c with
  | 0 -> Nop
  | 1 ->
      let n = g16 c in
      Seq (List.init n (fun _ -> get_stmt c (depth + 1)))
  | 2 ->
      let cost = enum c costs "cost constant" in
      let times = g16 c in
      if times > Costmodel.vm_charge_cap then fail "charge repeat above cap";
      Charge (cost, times)
  | 3 ->
      let s = slot c in
      Set (s, get_expr c (depth + 1))
  | 4 ->
      let cond = get_expr c (depth + 1) in
      let t = get_stmt c (depth + 1) in
      let f = get_stmt c (depth + 1) in
      If (cond, t, f)
  | 5 ->
      let s = slot c in
      let lo = get_expr c (depth + 1) in
      let hi = get_expr c (depth + 1) in
      For (s, lo, hi, get_stmt c (depth + 1))
  | 6 ->
      let s = slot c in
      let hi = get_expr c (depth + 1) in
      let lo = get_expr c (depth + 1) in
      For_down (s, hi, lo, get_stmt c (depth + 1))
  | 7 ->
      let s = slot c in
      let ls = slot c in
      For_list (s, ls, get_stmt c (depth + 1))
  | 8 ->
      let s = slot c in
      Push (s, get_expr c (depth + 1))
  | 9 -> Break
  | 10 ->
      let code = gstr8 c max_code in
      let addr = get_expr c (depth + 1) in
      let fmt = gstr16 c max_string in
      let argc = g8 c in
      if argc > 8 then fail "format arity too large";
      let args = List.init argc (fun _ -> get_expr c (depth + 1)) in
      Emit { code; addr; fmt; args }
  | _ -> fail "unknown statement tag"

let decode bytes =
  try
    let tag_len = String.length format_tag in
    if String.length bytes < tag_len + 1 then fail "truncated program";
    if String.sub bytes 0 tag_len <> format_tag then fail "bad magic";
    if Char.code bytes.[tag_len] <> version then fail "unsupported version";
    let c0 = { src = bytes; pos = tag_len + 1; nodes = 0; locals = 0 } in
    let name = gstr8 c0 max_name in
    if name = "" then fail "empty program name";
    let locals = g16 c0 in
    if locals > max_locals then fail "too many locals";
    let sort_findings = g8 c0 <> 0 in
    let ntables = g8 c0 in
    if ntables > max_tables then fail "too many tables";
    let tables =
      Array.init ntables (fun _ ->
          let n = g32 c0 in
          if n > max_table_entries then fail "table too large";
          List.init n (fun _ ->
              let k = gstr16 c0 max_string in
              let v = gstr16 c0 max_string in
              (k, v)))
    in
    let c = { c0 with locals } in
    let body = get_stmt c 0 in
    if c.pos <> String.length bytes then fail "trailing bytes";
    Ok { name; locals; sort_findings; tables; body }
  with Bad msg -> Error msg

(* ---- digests ------------------------------------------------------ *)

let digest p = Crypto.Sha256.digest (to_bytes p)
let digest_hex p = Crypto.Sha256.hex (digest p)
