# Convenience entry points; dune is the real build system.

.PHONY: all build test fmt check bench clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

# The one target CI / a reviewer needs: formatting, full build, full tests.
check: fmt build test

bench:
	dune exec bench/main.exe

clean:
	dune clean
