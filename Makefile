# Convenience entry points; dune is the real build system.

.PHONY: all build test fmt check bench bench-smoke bench-json policy-oracle profile lint clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

# The one target CI / a reviewer needs: formatting, full build, full
# tests (incl. the qcheck CFG/dataflow properties), the reduced
# benchmark gate (fused single-pass analysis must never lose to
# independent per-policy scans; flow-sensitive policies within budget
# of the pattern scans; the DSL libc program within 1.5x of the native
# module including interpreter overhead; domains=4 batch >= 1.8x
# faster than domains=1 wall-clock, skipped on machines with < 4
# recommended domains; domains=2 never slower than domains=1, skipped
# below 2; a mutually-attested fleet of two re-inspects a
# shared binary at most once), the DSL-vs-native differential oracle
# over every workload, and the control-flow lint over every example
# workload. `test` includes the fleet suite (test_fleet.ml: MAGE
# derivation, verdict-import trust rule, rogue-peer rejection,
# quarantine failover).
check: fmt build test bench-smoke policy-oracle lint

bench:
	dune exec bench/main.exe

bench-smoke:
	dune exec bench/main.exe -- --smoke

# The full differential: every workload (and adversarial fixture), the
# five builtin DSL programs vs the native modules — verdicts, findings
# and modelled cycles must match bit for bit.
policy-oracle:
	dune exec bench/main.exe -- --policy-oracle

# The domains=1/2/4/8 wall-clock scaling table, the fleet table
# (nodes=1/2/4: throughput and cross-node cache-hit ratio over two
# seven-workload rounds, round two forced off the warm node) and the
# channel comparison (legacy vs streaming vs 0-RTT: TTFPE and e2e per
# workload), written to BENCH_service.json for trend tracking.
bench-json:
	dune exec bench/main.exe -- --scaling

# One profiler-wrapped parallel batch through the work-stealing pool.
# Uses `perf stat` when the box has it (cycles, context switches, the
# real contention signal) and falls back to `/usr/bin/time -v`
# (voluntary/involuntary switches) elsewhere; either way the benchmark
# itself prints the pool's own pool_steals_total / pool_parks_total
# lock-contention summary.
profile: build
	@if command -v perf >/dev/null 2>&1; then \
	  perf stat -- dune exec bench/main.exe -- --profile; \
	elif [ -x /usr/bin/time ]; then \
	  /usr/bin/time -v dune exec bench/main.exe -- --profile; \
	else \
	  echo "(neither perf nor /usr/bin/time available; running unwrapped)"; \
	  dune exec bench/main.exe -- --profile; \
	fi

# Every synthesized evaluation workload, fully instrumented, must come
# out of the CFG lint with zero findings.
lint:
	dune exec bin/engarde_cli.exe -- lint --variant stack+ifcc \
	  -b nginx -b 401.bzip2 -b graph-500 -b 429.mcf -b memcached \
	  -b netperf -b otp-gen

clean:
	dune clean
