# Convenience entry points; dune is the real build system.

.PHONY: all build test fmt check bench bench-smoke clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

# The one target CI / a reviewer needs: formatting, full build, full
# tests, and the reduced benchmark gate (fused single-pass analysis
# must never lose to independent per-policy scans).
check: fmt build test bench-smoke

bench:
	dune exec bench/main.exe

bench-smoke:
	dune exec bench/main.exe -- --smoke

clean:
	dune clean
